package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"

	"procmine/internal/core"
	"procmine/internal/wlog"
)

// ShardSnapshotSchema versions the on-disk shard checkpoint format. Loading
// rejects any other schema string instead of guessing.
const ShardSnapshotSchema = "procmined-shard-snapshot/v1"

// ErrSnapshotIntegrity reports a checkpoint whose recorded model digest does
// not match the model mined from its own state — a torn, corrupted, or
// hand-edited file.
var ErrSnapshotIntegrity = errors.New("serve: snapshot failed integrity check")

// shardSnapshot is one shard's durable checkpoint: the additive miner state,
// the in-flight open executions, and a self-check digest. Shards records the
// topology so a restart with a different shard count fails loudly instead of
// mis-partitioning.
type shardSnapshot struct {
	Schema     string `json:"schema"`
	Shard      int    `json:"shard"`
	Shards     int    `json:"shards"`
	Executions int    `json:"executions"`
	// ModelSHA256 is the hex sha256 of the DOT rendering of mining the
	// snapshotted miner state with zero options. Restore re-mines and
	// compares; the miner's determinism turns the digest into an
	// end-to-end integrity oracle rather than a mere byte checksum.
	ModelSHA256 string               `json:"model_sha256"`
	Miner       *core.MinerSnapshot  `json:"miner"`
	Open        []wlog.OpenExecution `json:"open,omitempty"`
}

// modelDigest mines a snapshot's state with zero options and hashes the
// canonical DOT rendering.
func modelDigest(s *core.MinerSnapshot) (string, error) {
	im := core.NewIncrementalMiner()
	if err := im.RestoreSnapshot(s); err != nil {
		return "", err
	}
	g, err := im.Mine(core.Options{})
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(g.Dot("snapshot")))
	return hex.EncodeToString(sum[:]), nil
}

// snapshotter persists shard checkpoints under one directory, one file per
// shard, written atomically (temp file + fsync + rename) so a crash mid-write
// leaves the previous checkpoint intact. Saves and loads record their
// duration and byte size on the per-shard histograms and emit slog
// lifecycle events; both happen outside any shard mutex, so the file I/O
// here never blocks ingest.
type snapshotter struct {
	dir   string
	met   *serveMetrics // may be nil (tests constructing snapshotters directly)
	log   *slog.Logger  // may be nil
	clock Clock
}

// newSnapshotter ensures the snapshot directory exists. An empty dir
// disables persistence.
func newSnapshotter(dir string, met *serveMetrics, log *slog.Logger, clock Clock) (*snapshotter, error) {
	sn := &snapshotter{dir: dir, met: met, log: log, clock: clock}
	if clock == nil {
		sn.clock = systemClock{}
	}
	if dir == "" {
		return sn, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: snapshot dir: %w", err)
	}
	return sn, nil
}

// shardMet returns the shard's series, or nil when metrics are absent or
// the index is out of the instrumented range.
func (sn *snapshotter) shardMet(shard int) *shardMetrics {
	if sn.met == nil || shard < 0 || shard >= len(sn.met.shards) {
		return nil
	}
	return &sn.met.shards[shard]
}

// countingWriter tracks bytes written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (sn *snapshotter) enabled() bool { return sn.dir != "" }

func (sn *snapshotter) path(shard int) string {
	return filepath.Join(sn.dir, fmt.Sprintf("shard-%04d.snap.json", shard))
}

// save checkpoints one shard atomically.
func (sn *snapshotter) save(shard, shards int, miner *core.MinerSnapshot, open []wlog.OpenExecution) error {
	if !sn.enabled() {
		return nil
	}
	start := sn.clock.Now()
	digest, err := modelDigest(miner)
	if err != nil {
		return fmt.Errorf("serve: snapshot shard %d: digest: %w", shard, err)
	}
	snap := shardSnapshot{
		Schema:      ShardSnapshotSchema,
		Shard:       shard,
		Shards:      shards,
		Executions:  miner.Executions,
		ModelSHA256: digest,
		Miner:       miner,
		Open:        open,
	}
	f, err := os.CreateTemp(sn.dir, fmt.Sprintf(".shard-%04d-*.tmp", shard))
	if err != nil {
		return fmt.Errorf("serve: snapshot shard %d: %w", shard, err)
	}
	tmp := f.Name()
	cw := &countingWriter{w: f}
	enc := json.NewEncoder(cw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&snap); err == nil {
		err = f.Sync()
	} else {
		// Keep the first failure; the file is doomed either way.
		_ = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("serve: snapshot shard %d: write: %w", shard, err)
	}
	if err := os.Rename(tmp, sn.path(shard)); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("serve: snapshot shard %d: publish: %w", shard, err)
	}
	elapsed := sn.clock.Now().Sub(start).Seconds()
	if sm := sn.shardMet(shard); sm != nil {
		sm.snapSaveSec.Observe(elapsed)
		sm.snapSaveB.Observe(float64(cw.n))
	}
	if sn.log != nil {
		sn.log.Info("snapshot saved",
			"shard", shard, "executions", snap.Executions, "open", len(open),
			"bytes", cw.n, "duration_seconds", elapsed)
	}
	return nil
}

// load reads and verifies one shard's checkpoint. A missing file returns
// (nil, nil): the shard simply starts empty.
func (sn *snapshotter) load(shard, shards int) (*shardSnapshot, error) {
	if !sn.enabled() {
		return nil, nil
	}
	start := sn.clock.Now()
	data, err := os.ReadFile(sn.path(shard))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: restore shard %d: %w", shard, err)
	}
	var snap shardSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("serve: restore shard %d: decode: %w", shard, err)
	}
	if snap.Schema != ShardSnapshotSchema {
		return nil, fmt.Errorf("serve: restore shard %d: schema %q, want %q", shard, snap.Schema, ShardSnapshotSchema)
	}
	if snap.Shard != shard || snap.Shards != shards {
		return nil, fmt.Errorf("serve: restore shard %d: checkpoint is for shard %d of %d, want shard %d of %d",
			shard, snap.Shard, snap.Shards, shard, shards)
	}
	if snap.Miner == nil {
		return nil, fmt.Errorf("serve: restore shard %d: checkpoint has no miner state", shard)
	}
	if err := snap.Miner.Validate(); err != nil {
		return nil, fmt.Errorf("serve: restore shard %d: %w", shard, err)
	}
	digest, err := modelDigest(snap.Miner)
	if err != nil {
		return nil, fmt.Errorf("serve: restore shard %d: digest: %w", shard, err)
	}
	if digest != snap.ModelSHA256 {
		return nil, fmt.Errorf("serve: restore shard %d: %w: model digest %s, recorded %s",
			shard, ErrSnapshotIntegrity, digest, snap.ModelSHA256)
	}
	elapsed := sn.clock.Now().Sub(start).Seconds()
	if sm := sn.shardMet(shard); sm != nil {
		sm.snapLoadSec.Observe(elapsed)
		sm.snapLoadB.Observe(float64(len(data)))
	}
	if sn.log != nil {
		sn.log.Info("snapshot restored",
			"shard", shard, "executions", snap.Executions, "open", len(snap.Open),
			"bytes", len(data), "duration_seconds", elapsed)
	}
	return &snap, nil
}
