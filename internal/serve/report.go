package serve

import (
	"sort"

	"procmine/internal/wlog"
)

// ReportTotals is the additive, JSON-friendly projection of one or more
// wlog.IngestReports. The server keeps one for the decode (intake) stage and
// derives one per shard for the stream stage; their sum equals the single
// report a file-based StreamTextWith + ExecutionStream pipeline would have
// produced over the same records, which is what the chaos tests pin.
type ReportTotals struct {
	RecordsRead           int            `json:"records_read"`
	EventsDecoded         int            `json:"events_decoded"`
	RecordsSkipped        int            `json:"records_skipped,omitempty"`
	StepsDropped          int            `json:"steps_dropped,omitempty"`
	ExecutionsQuarantined int            `json:"executions_quarantined,omitempty"`
	QuarantinedIDs        []string       `json:"quarantined_ids,omitempty"`
	Errors                map[string]int `json:"errors,omitempty"`
}

// totalsOf projects one report.
func totalsOf(rep *wlog.IngestReport) ReportTotals {
	t := ReportTotals{
		RecordsRead:           rep.RecordsRead,
		EventsDecoded:         rep.EventsDecoded,
		RecordsSkipped:        rep.RecordsSkipped,
		StepsDropped:          rep.StepsDropped,
		ExecutionsQuarantined: rep.ExecutionsQuarantined,
	}
	if len(rep.QuarantinedIDs) > 0 {
		t.QuarantinedIDs = append([]string(nil), rep.QuarantinedIDs...)
	}
	if len(rep.Errors) > 0 {
		t.Errors = make(map[string]int, len(rep.Errors))
		for c, n := range rep.Errors {
			t.Errors[string(c)] = n
		}
	}
	return t
}

// add accumulates other into t.
func (t *ReportTotals) add(other ReportTotals) {
	t.RecordsRead += other.RecordsRead
	t.EventsDecoded += other.EventsDecoded
	t.RecordsSkipped += other.RecordsSkipped
	t.StepsDropped += other.StepsDropped
	t.ExecutionsQuarantined += other.ExecutionsQuarantined
	if len(other.QuarantinedIDs) > 0 {
		t.QuarantinedIDs = append(t.QuarantinedIDs, other.QuarantinedIDs...)
		sort.Strings(t.QuarantinedIDs)
	}
	if len(other.Errors) > 0 && t.Errors == nil {
		t.Errors = make(map[string]int, len(other.Errors))
	}
	for c, n := range other.Errors {
		t.Errors[c] += n
	}
}
