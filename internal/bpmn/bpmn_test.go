package bpmn

import (
	"encoding/xml"
	"strings"
	"testing"

	"procmine/internal/graph"
)

// parsed mirrors the exported structure for decoding in tests.
type parsed struct {
	XMLName xml.Name `xml:"definitions"`
	Process struct {
		ID    string `xml:"id,attr"`
		Start struct {
			ID string `xml:"id,attr"`
		} `xml:"startEvent"`
		End struct {
			ID string `xml:"id,attr"`
		} `xml:"endEvent"`
		Tasks []struct {
			ID   string `xml:"id,attr"`
			Name string `xml:"name,attr"`
		} `xml:"task"`
		Gateways []struct {
			ID string `xml:"id,attr"`
		} `xml:"inclusiveGateway"`
		Flows []struct {
			ID        string `xml:"id,attr"`
			Source    string `xml:"sourceRef,attr"`
			Target    string `xml:"targetRef,attr"`
			Condition string `xml:"conditionExpression"`
		} `xml:"sequenceFlow"`
	} `xml:"process"`
}

func export(t *testing.T, g *graph.Digraph, opts Options) parsed {
	t.Helper()
	var b strings.Builder
	if err := Write(&b, g, opts); err != nil {
		t.Fatalf("Write: %v", err)
	}
	var doc parsed
	if err := xml.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("exported BPMN does not parse: %v\n%s", err, b.String())
	}
	return doc
}

func TestWriteChain(t *testing.T) {
	g := graph.NewFromEdges(graph.Edge{From: "A", To: "B"}, graph.Edge{From: "B", To: "C"})
	doc := export(t, g, Options{ProcessID: "chain", Start: "A", End: "C"})
	if len(doc.Process.Tasks) != 3 {
		t.Fatalf("tasks = %d, want 3", len(doc.Process.Tasks))
	}
	if len(doc.Process.Gateways) != 0 {
		t.Fatalf("chain should need no gateways, got %d", len(doc.Process.Gateways))
	}
	// start->A, C->end, A->B, B->C.
	if len(doc.Process.Flows) != 4 {
		t.Fatalf("flows = %d, want 4", len(doc.Process.Flows))
	}
	if doc.Process.Start.ID != "start_event" || doc.Process.End.ID != "end_event" {
		t.Fatalf("events = %+v", doc.Process)
	}
}

func TestWriteGatewaysAndConditions(t *testing.T) {
	// A splits to B and C; both join at D.
	g := graph.NewFromEdges(
		graph.Edge{From: "A", To: "B"},
		graph.Edge{From: "A", To: "C"},
		graph.Edge{From: "B", To: "D"},
		graph.Edge{From: "C", To: "D"},
	)
	doc := export(t, g, Options{
		Start: "A", End: "D",
		Conditions: map[graph.Edge]string{
			{From: "A", To: "B"}: "o[0] >= 5",
		},
	})
	if len(doc.Process.Gateways) != 2 {
		t.Fatalf("gateways = %d, want split_A and join_D", len(doc.Process.Gateways))
	}
	ids := map[string]bool{}
	for _, gw := range doc.Process.Gateways {
		ids[gw.ID] = true
	}
	if !ids["split_A"] || !ids["join_D"] {
		t.Fatalf("gateway IDs = %v", ids)
	}
	// The A->B edge flow must run split_A -> task_B with the condition.
	foundCond := false
	for _, f := range doc.Process.Flows {
		if f.Source == "split_A" && f.Target == "task_B" {
			if strings.TrimSpace(f.Condition) != "o[0] >= 5" {
				t.Fatalf("condition = %q", f.Condition)
			}
			foundCond = true
		}
	}
	if !foundCond {
		t.Fatal("conditional flow split_A -> task_B missing")
	}
	// All flow IDs unique.
	seen := map[string]bool{}
	for _, f := range doc.Process.Flows {
		if seen[f.ID] {
			t.Fatalf("duplicate flow id %s", f.ID)
		}
		seen[f.ID] = true
	}
}

func TestWriteSanitizesNames(t *testing.T) {
	g := graph.NewFromEdges(graph.Edge{From: "Check Request", To: "Notify/OK"})
	doc := export(t, g, Options{Start: "Check Request", End: "Notify/OK"})
	for _, task := range doc.Process.Tasks {
		if strings.ContainsAny(task.ID, " /") {
			t.Fatalf("unsanitized task id %q", task.ID)
		}
	}
	// Original names preserved as the display name.
	names := map[string]bool{}
	for _, task := range doc.Process.Tasks {
		names[task.Name] = true
	}
	if !names["Check Request"] || !names["Notify/OK"] {
		t.Fatalf("task names = %v", names)
	}
}

func TestWriteErrors(t *testing.T) {
	g := graph.NewFromEdges(graph.Edge{From: "A", To: "B"})
	if err := Write(&strings.Builder{}, g, Options{Start: "X", End: "B"}); err == nil {
		t.Fatal("unknown start accepted")
	}
	if err := Write(&strings.Builder{}, g, Options{Start: "A", End: "X"}); err == nil {
		t.Fatal("unknown end accepted")
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"Simple":     "Simple",
		"with space": "with_space",
		"a/b:c":      "a_b_c",
		"":           "x",
		"ok_-2":      "ok_-2",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
