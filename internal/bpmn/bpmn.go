// Package bpmn exports mined process model graphs as BPMN 2.0 XML, the
// interchange format of modern workflow systems (Camunda, Flowable, jBPM —
// the successors of the Flowmark lineage this paper comes from).
//
// Mapping: every activity becomes a <task>; the process's initiating and
// terminating activities are additionally wrapped with a <startEvent> and
// <endEvent>. An activity with several outgoing edges gets an
// <inclusiveGateway> split (the paper's edges carry independent Boolean
// conditions — OR-split semantics), and an activity with several incoming
// edges gets an <inclusiveGateway> join (the engine's synchronizing merge).
// Edge conditions, when provided, are attached as <conditionExpression>
// text in the condition algebra's syntax.
package bpmn

import (
	"encoding/xml"
	"fmt"
	"io"

	"procmine/internal/graph"
)

// Options configures the export.
type Options struct {
	// ProcessID and Name label the <process> element. ProcessID defaults
	// to "process", Name to ProcessID.
	ProcessID, Name string
	// Start and End name the initiating and terminating activities; both
	// must be vertices of the graph.
	Start, End string
	// Conditions supplies per-edge condition expressions (keyed by edge),
	// rendered into conditionExpression elements. Optional.
	Conditions map[graph.Edge]string
}

// XML element shapes (subset of BPMN 2.0).
type xmlDefinitions struct {
	XMLName xml.Name   `xml:"definitions"`
	Xmlns   string     `xml:"xmlns,attr"`
	ID      string     `xml:"id,attr"`
	Process xmlProcess `xml:"process"`
}

type xmlProcess struct {
	ID         string    `xml:"id,attr"`
	Name       string    `xml:"name,attr"`
	IsExec     bool      `xml:"isExecutable,attr"`
	StartEvent *xmlNode  `xml:"startEvent,omitempty"`
	EndEvent   *xmlNode  `xml:"endEvent,omitempty"`
	Tasks      []xmlNode `xml:"task"`
	Gateways   []xmlNode `xml:"inclusiveGateway"`
	Flows      []xmlFlow `xml:"sequenceFlow"`
}

type xmlNode struct {
	ID   string `xml:"id,attr"`
	Name string `xml:"name,attr,omitempty"`
}

type xmlFlow struct {
	ID        string  `xml:"id,attr"`
	Source    string  `xml:"sourceRef,attr"`
	Target    string  `xml:"targetRef,attr"`
	Condition *xmlExp `xml:"conditionExpression,omitempty"`
}

type xmlExp struct {
	Type string `xml:"xsi:type,attr"`
	Text string `xml:",chardata"`
}

// Write renders the graph as a BPMN 2.0 document.
func Write(w io.Writer, g *graph.Digraph, opts Options) error {
	if opts.ProcessID == "" {
		opts.ProcessID = "process"
	}
	if opts.Name == "" {
		opts.Name = opts.ProcessID
	}
	if !g.HasVertex(opts.Start) || !g.HasVertex(opts.End) {
		return fmt.Errorf("bpmn: start %q or end %q not in graph", opts.Start, opts.End)
	}

	proc := xmlProcess{ID: opts.ProcessID, Name: opts.Name, IsExec: false}
	taskID := func(v string) string { return "task_" + sanitize(v) }
	splitID := func(v string) string { return "split_" + sanitize(v) }
	joinID := func(v string) string { return "join_" + sanitize(v) }

	// Tasks.
	for _, v := range g.Vertices() {
		proc.Tasks = append(proc.Tasks, xmlNode{ID: taskID(v), Name: v})
	}

	// Gateways for multi-way splits and joins.
	hasSplit := map[string]bool{}
	hasJoin := map[string]bool{}
	for _, v := range g.Vertices() {
		if g.OutDegree(v) > 1 {
			hasSplit[v] = true
			proc.Gateways = append(proc.Gateways, xmlNode{ID: splitID(v)})
		}
		if g.InDegree(v) > 1 {
			hasJoin[v] = true
			proc.Gateways = append(proc.Gateways, xmlNode{ID: joinID(v)})
		}
	}

	// Start and end events.
	proc.StartEvent = &xmlNode{ID: "start_event"}
	proc.EndEvent = &xmlNode{ID: "end_event"}

	flowSeq := 0
	addFlow := func(src, dst string, cond string) {
		flowSeq++
		f := xmlFlow{ID: fmt.Sprintf("flow_%03d", flowSeq), Source: src, Target: dst}
		if cond != "" {
			f.Condition = &xmlExp{Type: "tFormalExpression", Text: cond}
		}
		proc.Flows = append(proc.Flows, f)
	}

	addFlow("start_event", taskID(opts.Start), "")
	addFlow(taskID(opts.End), "end_event", "")

	// Split/join wiring: task -> (split gateway) -> edge -> (join gateway)
	// -> task, with conditions living on the edge segment.
	for _, v := range g.Vertices() {
		if hasSplit[v] {
			addFlow(taskID(v), splitID(v), "")
		}
		if hasJoin[v] {
			addFlow(joinID(v), taskID(v), "")
		}
	}
	for _, e := range g.Edges() {
		src := taskID(e.From)
		if hasSplit[e.From] {
			src = splitID(e.From)
		}
		dst := taskID(e.To)
		if hasJoin[e.To] {
			dst = joinID(e.To)
		}
		cond := ""
		if opts.Conditions != nil {
			cond = opts.Conditions[e]
		}
		addFlow(src, dst, cond)
	}

	doc := xmlDefinitions{
		Xmlns:   "http://www.omg.org/spec/BPMN/20100524/MODEL",
		ID:      "definitions_" + sanitize(opts.ProcessID),
		Process: proc,
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("bpmn: encoding: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// sanitize turns an activity name into an XML NCName-safe ID fragment.
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "x"
	}
	return string(out)
}
