package graph

import "fmt"

// TransitiveReduction returns the transitive reduction of a DAG: the unique
// smallest subgraph with the same transitive closure (Aho, Garey & Ullman
// 1972). It implements Algorithm 4 ("TR") from the appendix of the paper:
//
//  1. Find a topological ordering of G.
//  2. Visit each vertex v in reverse topological order, maintaining for each
//     vertex its descendant set.
//  3. A successor of v that is also reachable through another successor is a
//     shortcut; remove it from succ(v).
//
// The input graph is not modified. It returns ErrCyclic (wrapped) when g is
// not a DAG, since a graph with cycles has no unique transitive reduction.
func (g *Digraph) TransitiveReduction() (*Digraph, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("transitive reduction: %w", err)
	}
	n := g.NumVertices()
	red := New()
	for _, v := range g.label {
		red.AddVertex(v)
	}
	// desc[u] = vertices reachable from u via the (already reduced) suffix.
	desc := make([]*Bitset, n)
	for i := len(order) - 1; i >= 0; i-- {
		u := g.index[order[i]]
		// Union of descendants of all successors = everything reachable from
		// u through at least two edges.
		through := NewBitset(n)
		for v := range g.succ[u] {
			through.Or(desc[v])
		}
		d := through.Copy()
		for v := range g.succ[u] {
			if through.Has(v) {
				// v is reachable via another successor: the edge u->v is a
				// shortcut and is dropped (Lemma 7: an edge stays iff it is
				// the only path from u to v).
				continue
			}
			red.AddEdge(g.label[u], g.label[v])
			d.Set(v)
		}
		desc[u] = d
	}
	return red, nil
}

// TransitiveReductionNaive is the O(E * (V+E)) baseline used by the ablation
// benchmark: for each edge (u,v), temporarily delete it and test whether v is
// still reachable from u; if so the edge is redundant. Only valid for DAGs.
// Production code uses TransitiveReduction (Algorithm 4); this exists to
// quantify that choice.
func TransitiveReductionNaive(g *Digraph) (*Digraph, error) {
	if !g.IsDAG() {
		return nil, fmt.Errorf("transitive reduction (naive): %w", ErrCyclic)
	}
	red := g.Clone()
	for _, e := range g.Edges() {
		red.RemoveEdge(e.From, e.To)
		if !red.Reachable(e.From, e.To) {
			red.AddEdge(e.From, e.To)
		}
	}
	return red, nil
}

// ReduceInPlace replaces g's edge set with its transitive reduction.
// It returns ErrCyclic (wrapped) when g is not a DAG.
func (g *Digraph) ReduceInPlace() error {
	red, err := g.TransitiveReduction()
	if err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if !red.HasEdge(e.From, e.To) {
			g.RemoveEdge(e.From, e.To)
		}
	}
	return nil
}
