package graph

import (
	"reflect"
	"testing"
)

func TestSCCsAcyclic(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"}, Edge{"B", "C"})
	got := g.SCCs()
	want := [][]string{{"A"}, {"B"}, {"C"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SCCs = %v, want %v", got, want)
	}
}

func TestSCCsSingleCycle(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"}, Edge{"B", "C"}, Edge{"C", "A"})
	got := g.SCCs()
	want := [][]string{{"A", "B", "C"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SCCs = %v, want %v", got, want)
	}
}

func TestSCCsPaperExample7(t *testing.T) {
	// Example 7: followings graph for log {ABCF, ACDF, ADEF, AECF} after
	// 2-cycle removal contains the SCC {C, D, E}.
	g := NewFromEdges(
		Edge{"A", "B"}, Edge{"A", "C"}, Edge{"A", "D"}, Edge{"A", "E"},
		Edge{"B", "C"}, Edge{"B", "F"},
		Edge{"C", "D"}, Edge{"D", "E"}, Edge{"E", "C"},
		Edge{"C", "F"}, Edge{"D", "F"}, Edge{"E", "F"},
	)
	got := g.SCCs()
	want := [][]string{{"A"}, {"B"}, {"C", "D", "E"}, {"F"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SCCs = %v, want %v", got, want)
	}
}

func TestSCCsTwoComponents(t *testing.T) {
	g := NewFromEdges(
		Edge{"A", "B"}, Edge{"B", "A"},
		Edge{"C", "D"}, Edge{"D", "C"},
		Edge{"B", "C"},
	)
	got := g.SCCs()
	want := [][]string{{"A", "B"}, {"C", "D"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SCCs = %v, want %v", got, want)
	}
}

func TestSCCsNestedCycles(t *testing.T) {
	// Two cycles sharing a vertex collapse to one component.
	g := NewFromEdges(
		Edge{"A", "B"}, Edge{"B", "A"},
		Edge{"B", "C"}, Edge{"C", "B"},
	)
	got := g.SCCs()
	want := [][]string{{"A", "B", "C"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SCCs = %v, want %v", got, want)
	}
}

func TestSCCsDeepChainNoOverflow(t *testing.T) {
	// A 100k-vertex chain exercises the iterative DFS.
	g := New()
	prev := "v0"
	g.AddVertex(prev)
	for i := 1; i < 100000; i++ {
		cur := "v" + itoa(i)
		g.AddEdge(prev, cur)
		prev = cur
	}
	comps := g.SCCs()
	if len(comps) != 100000 {
		t.Fatalf("got %d components, want 100000", len(comps))
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

func TestRemoveIntraSCCEdges(t *testing.T) {
	g := NewFromEdges(
		Edge{"A", "B"},
		Edge{"B", "C"}, Edge{"C", "D"}, Edge{"D", "B"}, // cycle B,C,D
		Edge{"D", "E"},
		Edge{"C", "E"},
	)
	removed := g.RemoveIntraSCCEdges()
	if removed != 3 {
		t.Fatalf("removed %d edges, want 3", removed)
	}
	for _, e := range []Edge{{"B", "C"}, {"C", "D"}, {"D", "B"}} {
		if g.HasEdge(e.From, e.To) {
			t.Errorf("intra-SCC edge %v survived", e)
		}
	}
	for _, e := range []Edge{{"A", "B"}, {"D", "E"}, {"C", "E"}} {
		if !g.HasEdge(e.From, e.To) {
			t.Errorf("inter-SCC edge %v was removed", e)
		}
	}
}

func TestRemoveIntraSCCEdgesSelfLoop(t *testing.T) {
	g := NewFromEdges(Edge{"A", "A"}, Edge{"A", "B"})
	removed := g.RemoveIntraSCCEdges()
	if removed != 1 {
		t.Fatalf("removed %d, want 1 (the self-loop)", removed)
	}
	if g.HasEdge("A", "A") {
		t.Error("self-loop survived")
	}
	if !g.HasEdge("A", "B") {
		t.Error("normal edge removed")
	}
}

func TestRemoveIntraSCCEdgesNoCycles(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"}, Edge{"B", "C"})
	if removed := g.RemoveIntraSCCEdges(); removed != 0 {
		t.Fatalf("removed %d edges from a DAG, want 0", removed)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
}
