package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReadAdjacency parses the adjacency format emitted by WriteAdjacency:
//
//	A -> B C
//	B ->
//
// Blank lines and lines starting with '#' are skipped. A vertex may appear
// only on the right-hand side; it is created on first mention. The format
// round-trips with WriteAdjacency and is the interchange format for
// `procmine -compare`.
func ReadAdjacency(r io.Reader) (*Digraph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.Index(line, "->")
		if idx < 0 {
			return nil, fmt.Errorf("graph: line %d: missing '->': %q", lineno, line)
		}
		from := strings.TrimSpace(line[:idx])
		if from == "" {
			return nil, fmt.Errorf("graph: line %d: empty source vertex", lineno)
		}
		if strings.ContainsAny(from, " \t") {
			return nil, fmt.Errorf("graph: line %d: source %q contains whitespace", lineno, from)
		}
		g.AddVertex(from)
		for _, to := range strings.Fields(line[idx+2:]) {
			g.AddEdge(from, to)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scanning adjacency: %w", err)
	}
	return g, nil
}

// Adjacency renders the graph in the ReadAdjacency format.
func (g *Digraph) Adjacency() string {
	var b strings.Builder
	_ = g.WriteAdjacency(&b)
	return b.String()
}
