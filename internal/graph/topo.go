package graph

import (
	"errors"
	"sort"
)

// ErrCyclic is returned by TopoSort when the graph contains a directed cycle.
var ErrCyclic = errors.New("graph: not a DAG (contains a directed cycle)")

// TopoSort returns the vertex labels in a topological order using Kahn's
// algorithm. Ties are broken by label so that the order is deterministic.
// It returns ErrCyclic if the graph has a directed cycle.
func (g *Digraph) TopoSort() ([]string, error) {
	n := g.NumVertices()
	indeg := make([]int, n)
	for u := range g.label {
		indeg[u] = len(g.pred[u])
	}
	// Min-heap behaviour via sorted frontier keeps output deterministic.
	var frontier []int
	for u := range g.label {
		if indeg[u] == 0 {
			frontier = append(frontier, u)
		}
	}
	sortByLabel := func(xs []int) {
		sort.Slice(xs, func(i, j int) bool { return g.label[xs[i]] < g.label[xs[j]] })
	}
	sortByLabel(frontier)

	order := make([]string, 0, n)
	for len(frontier) > 0 {
		u := frontier[0]
		frontier = frontier[1:]
		order = append(order, g.label[u])
		var released []int
		for v := range g.succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				released = append(released, v)
			}
		}
		sortByLabel(released)
		frontier = mergeSortedByLabel(g, frontier, released)
	}
	if len(order) != n {
		return nil, ErrCyclic
	}
	return order, nil
}

// mergeSortedByLabel merges two label-sorted index slices.
func mergeSortedByLabel(g *Digraph, a, b []int) []int {
	if len(b) == 0 {
		return a
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if g.label[a[i]] <= g.label[b[j]] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// IsDAG reports whether the graph is acyclic.
func (g *Digraph) IsDAG() bool {
	_, err := g.TopoSort()
	return err == nil
}

// Reachable reports whether there is a directed path (of length >= 0) from
// from to to. A vertex is always reachable from itself if both exist.
func (g *Digraph) Reachable(from, to string) bool {
	u, ok := g.index[from]
	if !ok {
		return false
	}
	v, ok := g.index[to]
	if !ok {
		return false
	}
	if u == v {
		return true
	}
	seen := NewBitset(g.NumVertices())
	stack := []int{u}
	seen.Set(u)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for y := range g.succ[x] {
			if y == v {
				return true
			}
			if !seen.Has(y) {
				seen.Set(y)
				stack = append(stack, y)
			}
		}
	}
	return false
}

// ReachableSet returns the labels of all vertices reachable from v by a path
// of length >= 1 (v itself is included only if it lies on a cycle). The
// result is sorted. It returns nil if v does not exist.
func (g *Digraph) ReachableSet(v string) []string {
	u, ok := g.index[v]
	if !ok {
		return nil
	}
	seen := NewBitset(g.NumVertices())
	var stack []int
	for w := range g.succ[u] {
		if !seen.Has(w) {
			seen.Set(w)
			stack = append(stack, w)
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for y := range g.succ[x] {
			if !seen.Has(y) {
				seen.Set(y)
				stack = append(stack, y)
			}
		}
	}
	out := make([]string, 0, seen.Count())
	for _, i := range seen.Elements() {
		out = append(out, g.label[i])
	}
	sort.Strings(out)
	return out
}

// ConnectedFrom reports whether every vertex of the graph is reachable from
// start (treating start as reachable from itself). Used by the consistency
// check of Definition 6 ("all nodes in V' can be reached from the initiating
// activity").
func (g *Digraph) ConnectedFrom(start string) bool {
	u, ok := g.index[start]
	if !ok {
		return g.NumVertices() == 0
	}
	seen := NewBitset(g.NumVertices())
	seen.Set(u)
	stack := []int{u}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for y := range g.succ[x] {
			if !seen.Has(y) {
				seen.Set(y)
				stack = append(stack, y)
			}
		}
	}
	return seen.Count() == g.NumVertices()
}

// WeaklyConnected reports whether the graph is connected when edge directions
// are ignored. The empty graph is considered connected.
func (g *Digraph) WeaklyConnected() bool {
	n := g.NumVertices()
	if n == 0 {
		return true
	}
	seen := NewBitset(n)
	seen.Set(0)
	stack := []int{0}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for y := range g.succ[x] {
			if !seen.Has(y) {
				seen.Set(y)
				stack = append(stack, y)
			}
		}
		for y := range g.pred[x] {
			if !seen.Has(y) {
				seen.Set(y)
				stack = append(stack, y)
			}
		}
	}
	return seen.Count() == n
}
