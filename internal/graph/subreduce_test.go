package graph

import (
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

// oracleReduceSubset is the pre-SubsetReducer implementation of a subset
// reduction query: build the induced subgraph, reduce it from scratch.
func oracleReduceSubset(t *testing.T, g *Digraph, members []string) []Edge {
	t.Helper()
	red, err := g.InducedSubgraph(members).TransitiveReduction()
	if err != nil {
		t.Fatalf("oracle TransitiveReduction: %v", err)
	}
	return red.Edges()
}

func TestSubsetReducerMatchesInducedReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64) bool {
		n := 2 + int(rng.Int31n(16))
		g := randomDAG(rng, n, 0.35)
		sr, err := NewSubsetReducer(g)
		if err != nil {
			return false
		}
		labels := g.Vertices()
		for trial := 0; trial < 6; trial++ {
			var members []string
			for _, v := range labels {
				if rng.Float64() < 0.6 {
					members = append(members, v)
				}
			}
			got := sr.ReduceSubset(members)
			want := oracleReduceSubset(t, g, members)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Logf("subset %v: got %v, want %v", members, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetReducerFullSetMatchesTransitiveReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomDAG(rng, 12, 0.3)
	sr, err := NewSubsetReducer(g)
	if err != nil {
		t.Fatal(err)
	}
	got := sr.ReduceSubset(g.Vertices())
	red, err := g.TransitiveReduction()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, red.Edges()) {
		t.Fatalf("full-set reduction = %v, want %v", got, red.Edges())
	}
}

func TestSubsetReducerIgnoresUnknownLabels(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"}, Edge{"B", "C"}, Edge{"A", "C"})
	sr, err := NewSubsetReducer(g)
	if err != nil {
		t.Fatal(err)
	}
	got := sr.ReduceSubset([]string{"A", "B", "C", "ghost"})
	want := []Edge{{"A", "B"}, {"B", "C"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reduction = %v, want %v", got, want)
	}
	if edges := sr.ReduceSubset([]string{"ghost", "phantom"}); edges != nil {
		t.Fatalf("all-unknown subset should reduce to nil, got %v", edges)
	}
	if edges := sr.ReduceSubset(nil); edges != nil {
		t.Fatalf("empty subset should reduce to nil, got %v", edges)
	}
}

func TestSubsetReducerRejectsCyclicGraph(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"}, Edge{"B", "A"})
	if _, err := NewSubsetReducer(g); !errors.Is(err, ErrCyclic) {
		t.Fatalf("NewSubsetReducer on cycle: err = %v, want ErrCyclic", err)
	}
}

// TestSubsetReducerConcurrent exercises the documented concurrency contract:
// one reducer, many goroutines, all answers correct. Run with -race.
func TestSubsetReducerConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomDAG(rng, 14, 0.35)
	sr, err := NewSubsetReducer(g)
	if err != nil {
		t.Fatal(err)
	}
	labels := g.Vertices()
	subsets := make([][]string, 16)
	for i := range subsets {
		for _, v := range labels {
			if rng.Float64() < 0.5 {
				subsets[i] = append(subsets[i], v)
			}
		}
	}
	var wg sync.WaitGroup
	results := make([][]Edge, len(subsets))
	for i := range subsets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = sr.ReduceSubset(subsets[i])
		}(i)
	}
	wg.Wait()
	for i := range subsets {
		want := oracleReduceSubset(t, g, subsets[i])
		got := results[i]
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("subset %v: concurrent reduction = %v, want %v", subsets[i], got, want)
		}
	}
}
