package graph

import (
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

// oracleReduceSubset is the pre-SubsetReducer implementation of a subset
// reduction query: build the induced subgraph, reduce it from scratch.
func oracleReduceSubset(t *testing.T, g *Digraph, members []string) []Edge {
	t.Helper()
	red, err := g.InducedSubgraph(members).TransitiveReduction()
	if err != nil {
		t.Fatalf("oracle TransitiveReduction: %v", err)
	}
	return red.Edges()
}

func TestSubsetReducerMatchesInducedReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64) bool {
		n := 2 + int(rng.Int31n(16))
		g := randomDAG(rng, n, 0.35)
		sr, err := NewSubsetReducer(g)
		if err != nil {
			return false
		}
		labels := g.Vertices()
		for trial := 0; trial < 6; trial++ {
			var members []string
			for _, v := range labels {
				if rng.Float64() < 0.6 {
					members = append(members, v)
				}
			}
			got := sr.ReduceSubset(members)
			want := oracleReduceSubset(t, g, members)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Logf("subset %v: got %v, want %v", members, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetReducerFullSetMatchesTransitiveReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomDAG(rng, 12, 0.3)
	sr, err := NewSubsetReducer(g)
	if err != nil {
		t.Fatal(err)
	}
	got := sr.ReduceSubset(g.Vertices())
	red, err := g.TransitiveReduction()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, red.Edges()) {
		t.Fatalf("full-set reduction = %v, want %v", got, red.Edges())
	}
}

func TestSubsetReducerIgnoresUnknownLabels(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"}, Edge{"B", "C"}, Edge{"A", "C"})
	sr, err := NewSubsetReducer(g)
	if err != nil {
		t.Fatal(err)
	}
	got := sr.ReduceSubset([]string{"A", "B", "C", "ghost"})
	want := []Edge{{"A", "B"}, {"B", "C"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reduction = %v, want %v", got, want)
	}
	if edges := sr.ReduceSubset([]string{"ghost", "phantom"}); edges != nil {
		t.Fatalf("all-unknown subset should reduce to nil, got %v", edges)
	}
	if edges := sr.ReduceSubset(nil); edges != nil {
		t.Fatalf("empty subset should reduce to nil, got %v", edges)
	}
}

// markedEdges converts a MarkSubsetInto result back to a sorted edge slice
// for comparison against ReduceSubset.
func markedEdges(g *Digraph, marked *Bitset) []Edge {
	n := g.NumVertices()
	var out []Edge
	for _, cell := range marked.Elements() {
		out = append(out, Edge{From: g.label[cell/n], To: g.label[cell%n]})
	}
	sortEdges(out)
	return out
}

func sortEdges(es []Edge) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && (es[j].From < es[j-1].From ||
			(es[j].From == es[j-1].From && es[j].To < es[j-1].To)); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// TestMarkSubsetIntoMatchesReduceSubset pins the scratch-based marking
// kernel against the allocating ReduceSubset across random DAGs and
// subsets, reusing one scratch and one marked set across queries so
// cross-query staleness would surface.
func TestMarkSubsetIntoMatchesReduceSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(seed int64) bool {
		n := 2 + int(rng.Int31n(16))
		g := randomDAG(rng, n, 0.35)
		sr, err := NewSubsetReducer(g)
		if err != nil {
			return false
		}
		sc := sr.NewMarkScratch()
		labels := g.Vertices()
		for trial := 0; trial < 6; trial++ {
			var members []string
			for _, v := range labels {
				if rng.Float64() < 0.6 {
					members = append(members, v)
				}
			}
			sc.Members = sc.Members[:0]
			for _, v := range members {
				if i, ok := g.VertexIndex(v); ok {
					sc.Members = append(sc.Members, i)
				}
			}
			marked := NewBitset(sr.N() * sr.N())
			sr.MarkSubsetInto(sc.Members, sc, marked)
			got := markedEdges(g, marked)
			want := sr.ReduceSubset(members)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Logf("subset %v: MarkSubsetInto = %v, ReduceSubset = %v", members, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMarkSubsetIntoAccumulates checks that marks from successive queries
// accumulate in one marked set (the union the marking pass consumes) and
// that out-of-range indices are ignored.
func TestMarkSubsetIntoAccumulates(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"}, Edge{"B", "C"}, Edge{"A", "C"}, Edge{"C", "D"})
	sr, err := NewSubsetReducer(g)
	if err != nil {
		t.Fatal(err)
	}
	sc := sr.NewMarkScratch()
	marked := NewBitset(sr.N() * sr.N())
	idx := func(v string) int {
		i, ok := g.VertexIndex(v)
		if !ok {
			t.Fatalf("missing vertex %q", v)
		}
		return i
	}
	sr.MarkSubsetInto([]int{idx("A"), idx("C")}, sc, marked)
	sr.MarkSubsetInto([]int{idx("C"), idx("D"), -1, 99}, sc, marked)
	want := []Edge{{"A", "C"}, {"C", "D"}}
	if got := markedEdges(g, marked); !reflect.DeepEqual(got, want) {
		t.Fatalf("accumulated marks = %v, want %v", got, want)
	}
}

func TestSubsetReducerRejectsCyclicGraph(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"}, Edge{"B", "A"})
	if _, err := NewSubsetReducer(g); !errors.Is(err, ErrCyclic) {
		t.Fatalf("NewSubsetReducer on cycle: err = %v, want ErrCyclic", err)
	}
}

// TestSubsetReducerConcurrent exercises the documented concurrency contract:
// one reducer, many goroutines, all answers correct. Run with -race.
func TestSubsetReducerConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomDAG(rng, 14, 0.35)
	sr, err := NewSubsetReducer(g)
	if err != nil {
		t.Fatal(err)
	}
	labels := g.Vertices()
	subsets := make([][]string, 16)
	for i := range subsets {
		for _, v := range labels {
			if rng.Float64() < 0.5 {
				subsets[i] = append(subsets[i], v)
			}
		}
	}
	var wg sync.WaitGroup
	results := make([][]Edge, len(subsets))
	for i := range subsets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = sr.ReduceSubset(subsets[i])
		}(i)
	}
	wg.Wait()
	for i := range subsets {
		want := oracleReduceSubset(t, g, subsets[i])
		got := results[i]
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("subset %v: concurrent reduction = %v, want %v", subsets[i], got, want)
		}
	}
}
