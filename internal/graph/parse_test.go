package graph

import (
	"math/rand"
	"strings"
	"testing"
)

func TestReadAdjacencyBasic(t *testing.T) {
	in := "# mined graph\nA -> B C\nB -> E\nC ->\n\nE ->\n"
	g, err := ReadAdjacency(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadAdjacency: %v", err)
	}
	if g.NumVertices() != 4 {
		t.Fatalf("vertices = %d, want 4", g.NumVertices())
	}
	for _, e := range []Edge{{"A", "B"}, {"A", "C"}, {"B", "E"}} {
		if !g.HasEdge(e.From, e.To) {
			t.Errorf("missing edge %v", e)
		}
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", g.NumEdges())
	}
}

func TestReadAdjacencyRHSOnlyVertex(t *testing.T) {
	g, err := ReadAdjacency(strings.NewReader("A -> B\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasVertex("B") {
		t.Fatal("right-hand-side vertex not created")
	}
}

func TestReadAdjacencyErrors(t *testing.T) {
	cases := []string{
		"A B C\n",    // no arrow
		" -> B\n",    // empty source
		"A Z -> B\n", // source with space
	}
	for _, in := range cases {
		if _, err := ReadAdjacency(strings.NewReader(in)); err == nil {
			t.Errorf("ReadAdjacency(%q) accepted invalid input", in)
		}
	}
}

func TestAdjacencyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30; i++ {
		g := randomDAG(rng, 2+rng.Intn(10), 0.4)
		got, err := ReadAdjacency(strings.NewReader(g.Adjacency()))
		if err != nil {
			t.Fatalf("round trip parse: %v", err)
		}
		if !EqualGraphs(g, got) {
			t.Fatalf("round trip changed graph:\nin:  %v\nout: %v", g, got)
		}
	}
}
