package graph

// TransitiveClosure returns a new graph with an edge u->v whenever v is
// reachable from u in g by a path of length >= 1. For DAGs the computation
// runs in reverse topological order using bitset unions; for graphs with
// cycles it falls back to per-vertex DFS, which is still O(V(V+E)).
func (g *Digraph) TransitiveClosure() *Digraph {
	n := g.NumVertices()
	closure := New()
	for _, v := range g.label {
		closure.AddVertex(v)
	}
	desc := g.descendantSets()
	for u := 0; u < n; u++ {
		for _, v := range desc[u].Elements() {
			closure.AddEdge(g.label[u], g.label[v])
		}
	}
	return closure
}

// descendantSets computes, for every vertex u, the set of vertices reachable
// from u by a path of length >= 1. DAGs use a single reverse-topological
// sweep; cyclic graphs use DFS from each vertex.
func (g *Digraph) descendantSets() []*Bitset {
	n := g.NumVertices()
	desc := make([]*Bitset, n)
	order, err := g.TopoSort()
	if err == nil {
		for i := len(order) - 1; i >= 0; i-- {
			u := g.index[order[i]]
			d := NewBitset(n)
			for v := range g.succ[u] {
				d.Set(v)
				d.Or(desc[v])
			}
			desc[u] = d
		}
		return desc
	}
	for u := 0; u < n; u++ {
		d := NewBitset(n)
		stack := make([]int, 0, len(g.succ[u]))
		for v := range g.succ[u] {
			if !d.Has(v) {
				d.Set(v)
				stack = append(stack, v)
			}
		}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for y := range g.succ[x] {
				if !d.Has(y) {
					d.Set(y)
					stack = append(stack, y)
				}
			}
		}
		desc[u] = d
	}
	return desc
}

// SameClosure reports whether g and other have identical transitive closures
// (same vertex set and same reachability relation).
func (g *Digraph) SameClosure(other *Digraph) bool {
	if g.NumVertices() != other.NumVertices() {
		return false
	}
	for _, v := range g.label {
		if !other.HasVertex(v) {
			return false
		}
	}
	a := g.TransitiveClosure()
	b := other.TransitiveClosure()
	if a.NumEdges() != b.NumEdges() {
		return false
	}
	for _, e := range a.Edges() {
		if !b.HasEdge(e.From, e.To) {
			return false
		}
	}
	return true
}
