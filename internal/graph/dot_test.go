package graph

import (
	"strings"
	"testing"
)

func TestDotBasic(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"}, Edge{"B", "C"})
	got := g.Dot("demo")
	want := "digraph demo {\n  A;\n  B;\n  C;\n  A -> B;\n  B -> C;\n}\n"
	if got != want {
		t.Fatalf("Dot() =\n%s\nwant:\n%s", got, want)
	}
}

func TestDotDefaultName(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"})
	if !strings.HasPrefix(g.Dot(""), "digraph G {") {
		t.Fatalf("empty name did not default to G: %s", g.Dot(""))
	}
}

func TestDotQuoting(t *testing.T) {
	g := NewFromEdges(Edge{"Upload and Notify", "2nd-step"})
	got := g.Dot("my graph")
	for _, want := range []string{
		`digraph "my graph" {`,
		`"Upload and Notify"`,
		`"2nd-step"`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("Dot output missing %q:\n%s", want, got)
		}
	}
}

func TestDotOptions(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"})
	var b strings.Builder
	err := g.WriteDot(&b, DotOptions{
		Name:      "opts",
		Rankdir:   "LR",
		Highlight: []string{"A"},
		EdgeLabels: map[string]string{
			"A->B": "o(A)[0] > 3",
		},
	})
	if err != nil {
		t.Fatalf("WriteDot: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"rankdir=LR;",
		"A [shape=doublecircle];",
		`A -> B [label="o(A)[0] > 3"];`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteAdjacency(t *testing.T) {
	g := NewFromEdges(Edge{"A", "C"}, Edge{"A", "B"})
	var b strings.Builder
	if err := g.WriteAdjacency(&b); err != nil {
		t.Fatalf("WriteAdjacency: %v", err)
	}
	want := "A -> B C\nB ->\nC ->\n"
	if b.String() != want {
		t.Fatalf("adjacency =\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestQuoteDotID(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Simple", "Simple"},
		{"with_underscore", "with_underscore"},
		{"v12", "v12"},
		{"12v", `"12v"`}, // cannot start with a digit
		{"", `""`},
		{"has space", `"has space"`},
		{`has"quote`, `"has\"quote"`},
	}
	for _, c := range cases {
		if got := quoteDotID(c.in); got != c.want {
			t.Errorf("quoteDotID(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
