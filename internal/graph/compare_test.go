package graph

import (
	"math"
	"reflect"
	"testing"
)

func TestCompareEqual(t *testing.T) {
	a := NewFromEdges(Edge{"A", "B"}, Edge{"B", "C"})
	b := NewFromEdges(Edge{"B", "C"}, Edge{"A", "B"})
	d := Compare(a, b)
	if !d.Equal() {
		t.Fatalf("identical graphs not Equal: %+v", d)
	}
	if d.Common != 2 {
		t.Fatalf("Common = %d, want 2", d.Common)
	}
	if d.Precision() != 1 || d.Recall() != 1 {
		t.Fatalf("precision/recall = %v/%v, want 1/1", d.Precision(), d.Recall())
	}
	if !EqualGraphs(a, b) {
		t.Fatal("EqualGraphs = false")
	}
}

func TestCompareMissingAndExtra(t *testing.T) {
	ref := NewFromEdges(Edge{"A", "B"}, Edge{"B", "C"}, Edge{"C", "D"})
	mined := NewFromEdges(Edge{"A", "B"}, Edge{"B", "C"}, Edge{"A", "C"})
	d := Compare(ref, mined)
	if d.Equal() {
		t.Fatal("different graphs reported Equal")
	}
	if got, want := d.MissingEdges, []Edge{{"C", "D"}}; !reflect.DeepEqual(got, want) {
		t.Errorf("MissingEdges = %v, want %v", got, want)
	}
	if got, want := d.ExtraEdges, []Edge{{"A", "C"}}; !reflect.DeepEqual(got, want) {
		t.Errorf("ExtraEdges = %v, want %v", got, want)
	}
	if got, want := d.MissingVertices, []string{"D"}; !reflect.DeepEqual(got, want) {
		t.Errorf("MissingVertices = %v, want %v", got, want)
	}
	if math.Abs(d.Precision()-2.0/3) > 1e-12 {
		t.Errorf("Precision = %v, want 2/3", d.Precision())
	}
	if math.Abs(d.Recall()-2.0/3) > 1e-12 {
		t.Errorf("Recall = %v, want 2/3", d.Recall())
	}
}

func TestCompareSupergraph(t *testing.T) {
	ref := NewFromEdges(Edge{"A", "B"})
	mined := NewFromEdges(Edge{"A", "B"}, Edge{"A", "C"})
	d := Compare(ref, mined)
	if !d.Supergraph() {
		t.Fatal("Supergraph = false for a true supergraph")
	}
	if d.Equal() {
		t.Fatal("supergraph reported Equal")
	}
	// Reverse direction: mined misses an edge, so not a supergraph.
	d2 := Compare(mined, ref)
	if d2.Supergraph() {
		t.Fatal("Supergraph = true when edges are missing")
	}
}

func TestCompareEmptyGraphs(t *testing.T) {
	d := Compare(New(), New())
	if !d.Equal() {
		t.Fatal("two empty graphs not Equal")
	}
	if d.Precision() != 1 || d.Recall() != 1 {
		t.Fatalf("empty precision/recall = %v/%v, want 1/1", d.Precision(), d.Recall())
	}
}
