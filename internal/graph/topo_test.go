package graph

import (
	"errors"
	"reflect"
	"testing"
)

func TestTopoSortChain(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"}, Edge{"B", "C"}, Edge{"C", "D"})
	order, err := g.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	want := []string{"A", "B", "C", "D"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestTopoSortDeterministicTieBreak(t *testing.T) {
	// Diamond: A -> {B, C} -> D. B and C are incomparable; deterministic
	// tie-breaking must order them alphabetically.
	g := NewFromEdges(Edge{"A", "C"}, Edge{"A", "B"}, Edge{"B", "D"}, Edge{"C", "D"})
	order, err := g.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	want := []string{"A", "B", "C", "D"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestTopoSortRespectsEdges(t *testing.T) {
	g := NewFromEdges(
		Edge{"S", "A"}, Edge{"S", "B"}, Edge{"A", "E"},
		Edge{"B", "E"}, Edge{"A", "B"},
	)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	pos := map[string]int{}
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %v violated: pos[%s]=%d >= pos[%s]=%d", e, e.From, pos[e.From], e.To, pos[e.To])
		}
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"}, Edge{"B", "C"}, Edge{"C", "A"})
	if _, err := g.TopoSort(); !errors.Is(err, ErrCyclic) {
		t.Fatalf("TopoSort on cycle: err = %v, want ErrCyclic", err)
	}
}

func TestTopoSortEmpty(t *testing.T) {
	order, err := New().TopoSort()
	if err != nil {
		t.Fatalf("TopoSort on empty graph: %v", err)
	}
	if len(order) != 0 {
		t.Fatalf("order = %v, want empty", order)
	}
}

func TestIsDAG(t *testing.T) {
	dag := NewFromEdges(Edge{"A", "B"}, Edge{"B", "C"})
	if !dag.IsDAG() {
		t.Error("IsDAG(dag) = false")
	}
	cyc := NewFromEdges(Edge{"A", "B"}, Edge{"B", "A"})
	if cyc.IsDAG() {
		t.Error("IsDAG(2-cycle) = true")
	}
	self := NewFromEdges(Edge{"A", "A"})
	if self.IsDAG() {
		t.Error("IsDAG(self-loop) = true")
	}
}

func TestReachable(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"}, Edge{"B", "C"}, Edge{"D", "C"})
	cases := []struct {
		from, to string
		want     bool
	}{
		{"A", "C", true},
		{"A", "B", true},
		{"C", "A", false},
		{"A", "D", false},
		{"A", "A", true}, // reflexive by definition of Reachable
		{"X", "A", false},
		{"A", "X", false},
	}
	for _, c := range cases {
		if got := g.Reachable(c.from, c.to); got != c.want {
			t.Errorf("Reachable(%s,%s) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

func TestReachableOnCycle(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"}, Edge{"B", "C"}, Edge{"C", "B"})
	if !g.Reachable("B", "B") {
		t.Error("Reachable(B,B) on cycle = false")
	}
	if !g.Reachable("A", "C") {
		t.Error("Reachable(A,C) = false")
	}
}

func TestReachableSet(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"}, Edge{"B", "C"}, Edge{"A", "D"})
	got := g.ReachableSet("A")
	want := []string{"B", "C", "D"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ReachableSet(A) = %v, want %v", got, want)
	}
	if got := g.ReachableSet("C"); len(got) != 0 {
		t.Fatalf("ReachableSet(C) = %v, want empty", got)
	}
	if got := g.ReachableSet("missing"); got != nil {
		t.Fatalf("ReachableSet(missing) = %v, want nil", got)
	}
}

func TestReachableSetCycleIncludesSelf(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"}, Edge{"B", "A"})
	got := g.ReachableSet("A")
	want := []string{"A", "B"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ReachableSet(A) = %v, want %v (self via cycle)", got, want)
	}
}

func TestConnectedFrom(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"}, Edge{"B", "C"})
	if !g.ConnectedFrom("A") {
		t.Error("ConnectedFrom(A) = false for chain")
	}
	if g.ConnectedFrom("B") {
		t.Error("ConnectedFrom(B) = true though A unreachable")
	}
	g.AddVertex("Z")
	if g.ConnectedFrom("A") {
		t.Error("ConnectedFrom(A) = true with isolated vertex Z")
	}
	if !New().ConnectedFrom("anything") {
		t.Error("ConnectedFrom on empty graph = false")
	}
}

func TestWeaklyConnected(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"}, Edge{"C", "B"})
	if !g.WeaklyConnected() {
		t.Error("WeaklyConnected = false for weakly connected graph")
	}
	g.AddVertex("Z")
	if g.WeaklyConnected() {
		t.Error("WeaklyConnected = true with isolated vertex")
	}
	if !New().WeaklyConnected() {
		t.Error("WeaklyConnected(empty) = false")
	}
}
