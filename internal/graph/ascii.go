package graph

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteLayers renders a DAG as topological layers, a terminal-friendly
// sketch of the control flow:
//
//	[layer 0] A
//	[layer 1] B C
//	[layer 2] D
//	          edges: A->B A->C B->D C->D
//
// A vertex's layer is the length of the longest path reaching it, so every
// edge points to a strictly later layer. Cyclic graphs are rendered with
// the vertices of each strongly connected component collapsed into one
// "{A B}" pseudo-vertex (the loop members), since layers are undefined
// inside a cycle.
func (g *Digraph) WriteLayers(w io.Writer) error {
	work := g
	collapsed := map[string][]string{} // pseudo-name -> members
	if !g.IsDAG() {
		work, collapsed = g.condense()
	}
	layer := map[string]int{}
	order, err := work.TopoSort()
	if err != nil {
		return fmt.Errorf("graph: layering: %w", err)
	}
	maxLayer := 0
	for _, v := range order {
		l := 0
		for _, p := range work.Predecessors(v) {
			if layer[p]+1 > l {
				l = layer[p] + 1
			}
		}
		layer[v] = l
		if l > maxLayer {
			maxLayer = l
		}
	}
	// Bucket by layer following the (deterministic) topological order, not
	// the layer map, so rendering never depends on map iteration order.
	byLayer := make([][]string, maxLayer+1)
	for _, v := range order {
		l := layer[v]
		byLayer[l] = append(byLayer[l], v)
	}
	for l, vs := range byLayer {
		sort.Strings(vs)
		display := make([]string, len(vs))
		for i, v := range vs {
			if members, ok := collapsed[v]; ok {
				display[i] = "{" + strings.Join(members, " ") + "}"
			} else {
				display[i] = v
			}
		}
		if _, err := fmt.Fprintf(w, "[layer %d] %s\n", l, strings.Join(display, "  ")); err != nil {
			return err
		}
	}
	var edges []string
	for _, e := range g.Edges() {
		edges = append(edges, e.String())
	}
	_, err = fmt.Fprintf(w, "edges: %s\n", strings.Join(edges, " "))
	return err
}

// condense returns the condensation of g (one vertex per SCC) plus the
// mapping from multi-member pseudo-vertex names to their members.
func (g *Digraph) condense() (*Digraph, map[string][]string) {
	comp := map[string]string{} // vertex -> representative name
	collapsed := map[string][]string{}
	for _, c := range g.SCCs() {
		name := c[0]
		if len(c) > 1 {
			name = "scc:" + c[0]
			collapsed[name] = c
		}
		for _, v := range c {
			comp[v] = name
		}
	}
	cg := New()
	for _, v := range g.Vertices() {
		cg.AddVertex(comp[v])
	}
	for _, e := range g.Edges() {
		cf, ct := comp[e.From], comp[e.To]
		if cf != ct {
			cg.AddEdge(cf, ct)
		}
	}
	return cg, collapsed
}
