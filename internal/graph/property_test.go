package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomDigraph builds an arbitrary (possibly cyclic) digraph.
func randomDigraph(rng *rand.Rand, n int, p float64) *Digraph {
	g := New()
	labels := make([]string, n)
	for i := range labels {
		labels[i] = "v" + itoa(i)
		g.AddVertex(labels[i])
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < p {
				g.AddEdge(labels[i], labels[j])
			}
		}
	}
	return g
}

// bruteReachable computes reachability by Floyd-Warshall, the oracle for
// the DFS-based Reachable.
func bruteReachable(g *Digraph) map[[2]string]bool {
	vs := g.Vertices()
	reach := map[[2]string]bool{}
	for _, e := range g.Edges() {
		reach[[2]string{e.From, e.To}] = true
	}
	for _, k := range vs {
		for _, i := range vs {
			for _, j := range vs {
				if reach[[2]string{i, k}] && reach[[2]string{k, j}] {
					reach[[2]string{i, j}] = true
				}
			}
		}
	}
	return reach
}

func TestPropertyClosureMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		n := 2 + rng.Intn(8)
		g := randomDigraph(rng, n, 0.3)
		oracle := bruteReachable(g)
		closure := g.TransitiveClosure()
		for _, a := range g.Vertices() {
			for _, b := range g.Vertices() {
				if a == b {
					continue
				}
				if closure.HasEdge(a, b) != oracle[[2]string{a, b}] {
					t.Logf("mismatch %s->%s on %v", a, b, g)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySCCsMatchMutualReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	f := func(seed int64) bool {
		n := 2 + rng.Intn(8)
		g := randomDigraph(rng, n, 0.3)
		oracle := bruteReachable(g)
		sameSCC := map[[2]string]bool{}
		for _, c := range g.SCCs() {
			for _, a := range c {
				for _, b := range c {
					sameSCC[[2]string{a, b}] = true
				}
			}
		}
		for _, a := range g.Vertices() {
			for _, b := range g.Vertices() {
				mutual := a == b || (oracle[[2]string{a, b}] && oracle[[2]string{b, a}])
				if sameSCC[[2]string{a, b}] != mutual {
					t.Logf("SCC mismatch %s,%s on %v", a, b, g)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySCCsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		g := randomDigraph(rng, 2+rng.Intn(10), 0.3)
		seen := map[string]int{}
		for _, c := range g.SCCs() {
			for _, v := range c {
				seen[v]++
			}
		}
		if len(seen) != g.NumVertices() {
			t.Fatalf("SCCs cover %d of %d vertices", len(seen), g.NumVertices())
		}
		for v, count := range seen {
			if count != 1 {
				t.Fatalf("vertex %s in %d components", v, count)
			}
		}
	}
}

func TestPropertyReduceThenCloseIsClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 40; trial++ {
		g := randomDAG(rng, 2+rng.Intn(10), 0.4)
		red, err := g.TransitiveReduction()
		if err != nil {
			t.Fatal(err)
		}
		if !EqualGraphs(red.TransitiveClosure(), g.TransitiveClosure()) {
			t.Fatalf("closure(reduce(g)) != closure(g) for %v", g)
		}
	}
}
