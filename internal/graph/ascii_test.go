package graph

import (
	"strings"
	"testing"
)

func TestWriteLayersDiamond(t *testing.T) {
	g := NewFromEdges(
		Edge{"A", "B"}, Edge{"A", "C"}, Edge{"B", "D"}, Edge{"C", "D"},
	)
	var b strings.Builder
	if err := g.WriteLayers(&b); err != nil {
		t.Fatal(err)
	}
	want := "[layer 0] A\n[layer 1] B  C\n[layer 2] D\nedges: A->B A->C B->D C->D\n"
	if b.String() != want {
		t.Fatalf("layers =\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestWriteLayersLongestPath(t *testing.T) {
	// E is reachable directly from A and via B->C; its layer must be the
	// longest path (3), not the shortest.
	g := NewFromEdges(
		Edge{"A", "B"}, Edge{"B", "C"}, Edge{"C", "E"}, Edge{"A", "E"},
	)
	var b strings.Builder
	if err := g.WriteLayers(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "[layer 3] E") {
		t.Fatalf("E not on layer 3:\n%s", b.String())
	}
}

func TestWriteLayersCyclic(t *testing.T) {
	// B <-> C loop collapses into one pseudo-vertex.
	g := NewFromEdges(
		Edge{"A", "B"}, Edge{"B", "C"}, Edge{"C", "B"}, Edge{"C", "D"},
	)
	var b strings.Builder
	if err := g.WriteLayers(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "{B C}") {
		t.Fatalf("loop not collapsed:\n%s", out)
	}
	if !strings.Contains(out, "C->B") {
		t.Fatalf("edge list must still show the back edge:\n%s", out)
	}
}

func TestWriteLayersSingleVertex(t *testing.T) {
	g := New()
	g.AddVertex("only")
	var b strings.Builder
	if err := g.WriteLayers(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "[layer 0] only") {
		t.Fatalf("single vertex rendering:\n%s", b.String())
	}
}
