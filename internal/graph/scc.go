package graph

import "sort"

// SCCs returns the strongly connected components of the graph using Tarjan's
// algorithm (iterative, so deep graphs cannot overflow the goroutine stack).
// Each component is a sorted slice of vertex labels; components are returned
// sorted by their smallest label so the output is deterministic.
//
// Algorithm 2 of the paper (step 4) removes all edges between vertices of the
// same strongly connected component of the followings graph: such vertices
// follow each other both ways and are therefore independent.
func (g *Digraph) SCCs() [][]string {
	n := g.NumVertices()
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack   []int // Tarjan stack
		next    int   // next DFS index
		results [][]string
	)

	// Explicit DFS stack: each frame tracks the vertex and an iterator over
	// its successors (materialized once, order irrelevant for correctness).
	type frame struct {
		v     int
		succs []int
		i     int
	}
	succsOf := func(v int) []int {
		out := make([]int, 0, len(g.succ[v]))
		for w := range g.succ[v] {
			out = append(out, w)
		}
		return out
	}

	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		var dfs []frame
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		dfs = append(dfs, frame{v: root, succs: succsOf(root)})

		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			if f.i < len(f.succs) {
				w := f.succs[f.i]
				f.i++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{v: w, succs: succsOf(w)})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Post-order: pop the frame, propagate lowlink, emit component.
			v := f.v
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				p := &dfs[len(dfs)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, g.label[w])
					if w == v {
						break
					}
				}
				sort.Strings(comp)
				results = append(results, comp)
			}
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i][0] < results[j][0] })
	return results
}

// RemoveIntraSCCEdges deletes every edge whose endpoints lie in the same
// strongly connected component with more than one vertex, and every
// self-loop. It returns the number of edges removed. This is step 4 of
// Algorithm 2 / step 5 of Algorithm 3.
func (g *Digraph) RemoveIntraSCCEdges() int {
	comp := make(map[string]int)
	size := make(map[int]int)
	for ci, c := range g.SCCs() {
		size[ci] = len(c)
		for _, v := range c {
			comp[v] = ci
		}
	}
	removed := 0
	for _, e := range g.Edges() {
		sameBigSCC := comp[e.From] == comp[e.To] && size[comp[e.From]] >= 2
		if e.From == e.To || sameBigSCC {
			if g.RemoveEdge(e.From, e.To) {
				removed++
			}
		}
	}
	return removed
}
