// Package graph provides the directed-graph substrate used throughout
// procmine: a labeled digraph with topological ordering, strongly connected
// components, transitive closure and reduction, induced subgraphs, and
// comparison utilities. It implements Algorithm 4 ("TR") from the appendix of
// Agrawal, Gunopulos & Leymann (EDBT 1998) as its transitive-reduction
// primitive for DAGs.
//
// Vertices are identified by string labels (activity names). Internally each
// label maps to a dense integer index so that set operations run on bitsets.
package graph

import (
	"fmt"
	"sort"
)

// Edge is a directed edge between two labeled vertices.
type Edge struct {
	From, To string
}

// String returns the edge in "From->To" form.
func (e Edge) String() string { return e.From + "->" + e.To }

// Digraph is a mutable directed graph over string-labeled vertices.
// The zero value is not ready to use; create one with New.
type Digraph struct {
	index map[string]int // label -> dense index
	label []string       // dense index -> label
	succ  []map[int]bool // adjacency: succ[u][v] == true iff edge u->v
	pred  []map[int]bool // reverse adjacency
	edges int
}

// New returns an empty digraph.
func New() *Digraph {
	return &Digraph{index: make(map[string]int)}
}

// NewFromEdges builds a digraph containing exactly the given edges (and their
// endpoint vertices).
func NewFromEdges(edges ...Edge) *Digraph {
	g := New()
	for _, e := range edges {
		g.AddEdge(e.From, e.To)
	}
	return g
}

// NumVertices returns the number of vertices.
func (g *Digraph) NumVertices() int { return len(g.label) }

// NumEdges returns the number of edges.
func (g *Digraph) NumEdges() int { return g.edges }

// HasVertex reports whether the vertex labeled v exists.
func (g *Digraph) HasVertex(v string) bool {
	_, ok := g.index[v]
	return ok
}

// AddVertex ensures a vertex labeled v exists and returns its dense index.
func (g *Digraph) AddVertex(v string) int {
	if i, ok := g.index[v]; ok {
		return i
	}
	i := len(g.label)
	g.index[v] = i
	g.label = append(g.label, v)
	g.succ = append(g.succ, make(map[int]bool))
	g.pred = append(g.pred, make(map[int]bool))
	return i
}

// AddEdge inserts the edge from->to, creating missing vertices. Self-loops
// are permitted (they arise transiently in cyclic mining); duplicate edges
// are idempotent. It reports whether the edge was newly added.
func (g *Digraph) AddEdge(from, to string) bool {
	u := g.AddVertex(from)
	v := g.AddVertex(to)
	if g.succ[u][v] {
		return false
	}
	g.succ[u][v] = true
	g.pred[v][u] = true
	g.edges++
	return true
}

// RemoveEdge deletes the edge from->to if present and reports whether it was.
func (g *Digraph) RemoveEdge(from, to string) bool {
	u, ok := g.index[from]
	if !ok {
		return false
	}
	v, ok := g.index[to]
	if !ok {
		return false
	}
	if !g.succ[u][v] {
		return false
	}
	delete(g.succ[u], v)
	delete(g.pred[v], u)
	g.edges--
	return true
}

// HasEdge reports whether the edge from->to exists.
func (g *Digraph) HasEdge(from, to string) bool {
	u, ok := g.index[from]
	if !ok {
		return false
	}
	v, ok := g.index[to]
	if !ok {
		return false
	}
	return g.succ[u][v]
}

// VertexIndex returns the dense index of the vertex labeled v and whether
// it exists. Dense indices are assigned by AddVertex in insertion order and
// are stable for the life of the graph; they address the index space used
// by SubsetReducer.MarkSubsetInto.
func (g *Digraph) VertexIndex(v string) (int, bool) {
	i, ok := g.index[v]
	return i, ok
}

// VertexLabel returns the label of the vertex at dense index i, or "" when
// i is out of range. It is the inverse of VertexIndex.
func (g *Digraph) VertexLabel(i int) string {
	if i < 0 || i >= len(g.label) {
		return ""
	}
	return g.label[i]
}

// Vertices returns all vertex labels in sorted order.
func (g *Digraph) Vertices() []string {
	out := make([]string, len(g.label))
	copy(out, g.label)
	sort.Strings(out)
	return out
}

// Edges returns all edges sorted by (From, To).
func (g *Digraph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for u, m := range g.succ {
		for v := range m {
			out = append(out, Edge{g.label[u], g.label[v]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Successors returns the labels of vertices directly reachable from v,
// sorted. It returns nil if v does not exist.
func (g *Digraph) Successors(v string) []string {
	u, ok := g.index[v]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(g.succ[u]))
	for w := range g.succ[u] {
		out = append(out, g.label[w])
	}
	sort.Strings(out)
	return out
}

// Predecessors returns the labels of vertices with a direct edge into v,
// sorted. It returns nil if v does not exist.
func (g *Digraph) Predecessors(v string) []string {
	u, ok := g.index[v]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(g.pred[u]))
	for w := range g.pred[u] {
		out = append(out, g.label[w])
	}
	sort.Strings(out)
	return out
}

// OutDegree returns the number of outgoing edges of v (0 if absent).
func (g *Digraph) OutDegree(v string) int {
	if u, ok := g.index[v]; ok {
		return len(g.succ[u])
	}
	return 0
}

// InDegree returns the number of incoming edges of v (0 if absent).
func (g *Digraph) InDegree(v string) int {
	if u, ok := g.index[v]; ok {
		return len(g.pred[u])
	}
	return 0
}

// Sources returns the vertices with no incoming edges, sorted.
func (g *Digraph) Sources() []string {
	var out []string
	for u := range g.label {
		if len(g.pred[u]) == 0 {
			out = append(out, g.label[u])
		}
	}
	sort.Strings(out)
	return out
}

// Sinks returns the vertices with no outgoing edges, sorted.
func (g *Digraph) Sinks() []string {
	var out []string
	for u := range g.label {
		if len(g.succ[u]) == 0 {
			out = append(out, g.label[u])
		}
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the graph.
func (g *Digraph) Clone() *Digraph {
	ng := New()
	for _, v := range g.label {
		ng.AddVertex(v)
	}
	for u, m := range g.succ {
		for v := range m {
			ng.AddEdge(g.label[u], g.label[v])
		}
	}
	return ng
}

// InducedSubgraph returns the subgraph induced by the given vertex labels:
// those vertices plus every edge of g whose endpoints are both retained.
// Labels not present in g are ignored.
func (g *Digraph) InducedSubgraph(vertices []string) *Digraph {
	keep := make(map[int]bool, len(vertices))
	ng := New()
	for _, v := range vertices {
		if i, ok := g.index[v]; ok {
			keep[i] = true
			ng.AddVertex(v)
		}
	}
	for u := range keep {
		for v := range g.succ[u] {
			if keep[v] {
				ng.AddEdge(g.label[u], g.label[v])
			}
		}
	}
	return ng
}

// Reverse returns a new graph with every edge direction flipped.
func (g *Digraph) Reverse() *Digraph {
	ng := New()
	for _, v := range g.label {
		ng.AddVertex(v)
	}
	for u, m := range g.succ {
		for v := range m {
			ng.AddEdge(g.label[v], g.label[u])
		}
	}
	return ng
}

// String renders the graph as "V={...} E={...}" with sorted members, which is
// stable and convenient for tests and debugging.
func (g *Digraph) String() string {
	vs := g.Vertices()
	es := g.Edges()
	s := "V={"
	for i, v := range vs {
		if i > 0 {
			s += ","
		}
		s += v
	}
	s += "} E={"
	for i, e := range es {
		if i > 0 {
			s += ","
		}
		s += e.String()
	}
	return s + "}"
}

// indexOf returns the dense index for label v, or an error if absent.
func (g *Digraph) indexOf(v string) (int, error) {
	i, ok := g.index[v]
	if !ok {
		return 0, fmt.Errorf("graph: unknown vertex %q", v)
	}
	return i, nil
}
