package graph

import "math/bits"

// Bitset is a fixed-capacity set of small non-negative integers, used for
// descendant bookkeeping in transitive closure and reduction. The zero value
// is unusable; create one with NewBitset.
type Bitset struct {
	words []uint64
	n     int // capacity in bits
}

// NewBitset returns an empty bitset able to hold values in [0, n).
func NewBitset(n int) *Bitset {
	if n < 0 {
		n = 0
	}
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity of the bitset in bits.
func (b *Bitset) Len() int { return b.n }

// Set adds i to the set. Out-of-range values are ignored.
func (b *Bitset) Set(i int) {
	if i < 0 || i >= b.n {
		return
	}
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear removes i from the set. Out-of-range values are ignored.
func (b *Bitset) Clear(i int) {
	if i < 0 || i >= b.n {
		return
	}
	b.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Has reports whether i is in the set.
func (b *Bitset) Has(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Or sets b to the union of b and other. The two bitsets must have been
// created with the same capacity.
func (b *Bitset) Or(other *Bitset) {
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// AndNot removes from b every element present in other.
func (b *Bitset) AndNot(other *Bitset) {
	for i, w := range other.words {
		b.words[i] &^= w
	}
}

// Intersects reports whether b and other share at least one element.
func (b *Bitset) Intersects(other *Bitset) bool {
	for i, w := range other.words {
		if b.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of elements in the set.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset removes all elements.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Copy returns an independent copy of the bitset.
func (b *Bitset) Copy() *Bitset {
	nb := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(nb.words, b.words)
	return nb
}

// Equal reports whether b and other contain exactly the same elements.
func (b *Bitset) Equal(other *Bitset) bool {
	if b.n != other.n {
		return false
	}
	for i, w := range b.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// Elements returns the members of the set in increasing order.
func (b *Bitset) Elements() []int {
	out := make([]int, 0, b.Count())
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			out = append(out, wi*64+tz)
			w &^= 1 << uint(tz)
		}
	}
	return out
}
