package graph

import (
	"fmt"
	"sort"
)

// SubsetReducer answers repeated induced-subgraph transitive-reduction
// queries against one fixed DAG. Algorithm 2's marking pass (and the
// incremental miner's replay of it) computes the transitive reduction of
// the dependency graph's induced subgraph once per distinct activity-set
// signature; building a fresh Digraph and re-running the topological sort
// for every signature dominated that pass. The reducer computes the full
// graph's reachability bookkeeping once — the topological order and a dense
// successor array over the shared index space — and reuses it for every
// subset: the restriction of a DAG's topological order to any vertex subset
// is a valid topological order of the induced subgraph, so each query runs
// Algorithm 4's reverse sweep directly on the shared dense indices with no
// per-query graph construction or sorting.
//
// The reducer holds a reference to g; g must not be mutated while the
// reducer is in use. ReduceSubset allocates only per-call scratch and is
// safe for concurrent use from multiple goroutines.
type SubsetReducer struct {
	g     *Digraph
	n     int
	order []int   // dense vertex indices in topological order
	succ  [][]int // dense successor lists, sorted for deterministic sweeps
}

// NewSubsetReducer precomputes the topological order and dense adjacency of
// g. It returns ErrCyclic (wrapped) when g is not a DAG, since induced
// subgraphs of a cyclic graph have no unique transitive reduction in
// general.
func NewSubsetReducer(g *Digraph) (*SubsetReducer, error) {
	labels, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("subset reducer: %w", err)
	}
	n := g.NumVertices()
	r := &SubsetReducer{g: g, n: n, order: make([]int, n), succ: make([][]int, n)}
	for i, v := range labels {
		r.order[i] = g.index[v]
	}
	for u := 0; u < n; u++ {
		if len(g.succ[u]) == 0 {
			continue
		}
		s := make([]int, 0, len(g.succ[u]))
		for v := range g.succ[u] {
			s = append(s, v)
		}
		sort.Ints(s)
		r.succ[u] = s
	}
	return r, nil
}

// ReduceSubset returns the edges of the transitive reduction of the
// subgraph of g induced by the given vertex labels, sorted by (From, To).
// Labels absent from g are ignored, matching InducedSubgraph. The result
// equals InducedSubgraph(members).TransitiveReduction().Edges() for every
// subset.
func (r *SubsetReducer) ReduceSubset(members []string) []Edge {
	member := NewBitset(r.n)
	any := false
	for _, v := range members {
		if i, ok := r.g.index[v]; ok {
			member.Set(i)
			any = true
		}
	}
	if !any {
		return nil
	}
	// Algorithm 4's reverse-topological sweep restricted to the member set:
	// desc[u] accumulates the members reachable from u inside the subgraph,
	// and a successor already reachable through another successor is a
	// shortcut.
	desc := make([]*Bitset, r.n)
	var edges []Edge
	for i := r.n - 1; i >= 0; i-- {
		u := r.order[i]
		if !member.Has(u) {
			continue
		}
		through := NewBitset(r.n)
		for _, v := range r.succ[u] {
			if member.Has(v) && desc[v] != nil {
				through.Or(desc[v])
			}
		}
		d := through.Copy()
		for _, v := range r.succ[u] {
			if !member.Has(v) || through.Has(v) {
				continue
			}
			edges = append(edges, Edge{From: r.g.label[u], To: r.g.label[v]})
			d.Set(v)
		}
		desc[u] = d
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	return edges
}

// MarkScratch is the reusable working state of MarkSubsetInto: the member
// bitset, one descendant row per vertex (flat), and a members buffer for
// callers that translate label or interner IDs into dense indices. One
// scratch serves one goroutine; allocate one per worker with NewMarkScratch
// and reuse it across queries — MarkSubsetInto itself never allocates,
// which is what keeps the Algorithm 2 marking kernel on the //procmine:hot
// path allocation-free.
type MarkScratch struct {
	member  *Bitset
	through []uint64 // one descendant row
	desc    []uint64 // n rows × words, flat; row u = desc[u*words:(u+1)*words]
	words   int
	// Members is a caller-owned buffer of capacity n for assembling the
	// dense member indices of a query without allocating.
	Members []int
}

// NewMarkScratch allocates scratch for MarkSubsetInto queries against this
// reducer's graph.
func (r *SubsetReducer) NewMarkScratch() *MarkScratch {
	words := (r.n + 63) / 64
	return &MarkScratch{
		member:  NewBitset(r.n),
		through: make([]uint64, words),
		desc:    make([]uint64, r.n*words),
		words:   words,
		Members: make([]int, 0, r.n),
	}
}

// MarkSubsetInto computes the transitive reduction of the subgraph induced
// by the given dense vertex indices and sets, for each reduction edge
// (u, v), bit u*n+v of marked (capacity n²). It is the allocation-free,
// index-space form of ReduceSubset: the same Algorithm 4 reverse sweep over
// the shared topological order, writing into caller-owned state instead of
// materializing an edge slice. Out-of-range indices are ignored. Multiple
// goroutines may query concurrently with distinct scratches and marked
// sets; marked sets merge with Bitset.Or since each query only sets bits.
func (r *SubsetReducer) MarkSubsetInto(members []int, sc *MarkScratch, marked *Bitset) {
	sc.member.Reset()
	any := false
	for _, v := range members {
		if v >= 0 && v < r.n {
			sc.member.Set(v)
			any = true
		}
	}
	if !any {
		return
	}
	w := sc.words
	for i := r.n - 1; i >= 0; i-- {
		u := r.order[i]
		if !sc.member.Has(u) {
			continue
		}
		through := sc.through
		for k := range through {
			through[k] = 0
		}
		// Member successors appear after u in topological order, so their
		// descendant rows were rewritten earlier in this sweep — rows from
		// previous queries are never read.
		for _, v := range r.succ[u] {
			if sc.member.Has(v) {
				row := sc.desc[v*w : (v+1)*w]
				for k := range through {
					through[k] |= row[k]
				}
			}
		}
		drow := sc.desc[u*w : (u+1)*w]
		copy(drow, through)
		for _, v := range r.succ[u] {
			if !sc.member.Has(v) || through[v>>6]&(1<<(uint(v)&63)) != 0 {
				continue
			}
			marked.Set(u*r.n + v)
			drow[v>>6] |= 1 << (uint(v) & 63)
		}
	}
}

// N returns the dense vertex count of the reducer's graph — the dimension
// of the index space MarkSubsetInto operates in.
func (r *SubsetReducer) N() int { return r.n }
