package graph

import (
	"fmt"
	"sort"
)

// SubsetReducer answers repeated induced-subgraph transitive-reduction
// queries against one fixed DAG. Algorithm 2's marking pass (and the
// incremental miner's replay of it) computes the transitive reduction of
// the dependency graph's induced subgraph once per distinct activity-set
// signature; building a fresh Digraph and re-running the topological sort
// for every signature dominated that pass. The reducer computes the full
// graph's reachability bookkeeping once — the topological order and a dense
// successor array over the shared index space — and reuses it for every
// subset: the restriction of a DAG's topological order to any vertex subset
// is a valid topological order of the induced subgraph, so each query runs
// Algorithm 4's reverse sweep directly on the shared dense indices with no
// per-query graph construction or sorting.
//
// The reducer holds a reference to g; g must not be mutated while the
// reducer is in use. ReduceSubset allocates only per-call scratch and is
// safe for concurrent use from multiple goroutines.
type SubsetReducer struct {
	g     *Digraph
	n     int
	order []int   // dense vertex indices in topological order
	succ  [][]int // dense successor lists, sorted for deterministic sweeps
}

// NewSubsetReducer precomputes the topological order and dense adjacency of
// g. It returns ErrCyclic (wrapped) when g is not a DAG, since induced
// subgraphs of a cyclic graph have no unique transitive reduction in
// general.
func NewSubsetReducer(g *Digraph) (*SubsetReducer, error) {
	labels, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("subset reducer: %w", err)
	}
	n := g.NumVertices()
	r := &SubsetReducer{g: g, n: n, order: make([]int, n), succ: make([][]int, n)}
	for i, v := range labels {
		r.order[i] = g.index[v]
	}
	for u := 0; u < n; u++ {
		if len(g.succ[u]) == 0 {
			continue
		}
		s := make([]int, 0, len(g.succ[u]))
		for v := range g.succ[u] {
			s = append(s, v)
		}
		sort.Ints(s)
		r.succ[u] = s
	}
	return r, nil
}

// ReduceSubset returns the edges of the transitive reduction of the
// subgraph of g induced by the given vertex labels, sorted by (From, To).
// Labels absent from g are ignored, matching InducedSubgraph. The result
// equals InducedSubgraph(members).TransitiveReduction().Edges() for every
// subset.
func (r *SubsetReducer) ReduceSubset(members []string) []Edge {
	member := NewBitset(r.n)
	any := false
	for _, v := range members {
		if i, ok := r.g.index[v]; ok {
			member.Set(i)
			any = true
		}
	}
	if !any {
		return nil
	}
	// Algorithm 4's reverse-topological sweep restricted to the member set:
	// desc[u] accumulates the members reachable from u inside the subgraph,
	// and a successor already reachable through another successor is a
	// shortcut.
	desc := make([]*Bitset, r.n)
	var edges []Edge
	for i := r.n - 1; i >= 0; i-- {
		u := r.order[i]
		if !member.Has(u) {
			continue
		}
		through := NewBitset(r.n)
		for _, v := range r.succ[u] {
			if member.Has(v) && desc[v] != nil {
				through.Or(desc[v])
			}
		}
		d := through.Copy()
		for _, v := range r.succ[u] {
			if !member.Has(v) || through.Has(v) {
				continue
			}
			edges = append(edges, Edge{From: r.g.label[u], To: r.g.label[v]})
			d.Set(v)
		}
		desc[u] = d
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	return edges
}
