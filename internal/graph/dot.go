package graph

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// DotOptions controls DOT rendering.
type DotOptions struct {
	// Name is the graph name in the emitted "digraph <Name> { ... }".
	Name string
	// Rankdir sets layout direction ("LR", "TB", ...). Empty omits the attr.
	Rankdir string
	// Highlight marks these vertices with a distinct style (e.g. source and
	// sink activities).
	Highlight []string
	// EdgeLabels maps "From->To" to a label (e.g. a mined Boolean condition).
	EdgeLabels map[string]string
}

// WriteDot renders the graph in Graphviz DOT form. Vertices and edges are
// emitted in sorted order so output is reproducible.
func (g *Digraph) WriteDot(w io.Writer, opts DotOptions) error {
	name := opts.Name
	if name == "" {
		name = "G"
	}
	if _, err := fmt.Fprintf(w, "digraph %s {\n", quoteDotID(name)); err != nil {
		return err
	}
	if opts.Rankdir != "" {
		if _, err := fmt.Fprintf(w, "  rankdir=%s;\n", opts.Rankdir); err != nil {
			return err
		}
	}
	hl := make(map[string]bool, len(opts.Highlight))
	for _, v := range opts.Highlight {
		hl[v] = true
	}
	for _, v := range g.Vertices() {
		attr := ""
		if hl[v] {
			attr = " [shape=doublecircle]"
		}
		if _, err := fmt.Fprintf(w, "  %s%s;\n", quoteDotID(v), attr); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		label := ""
		if opts.EdgeLabels != nil {
			if l, ok := opts.EdgeLabels[e.String()]; ok && l != "" {
				label = fmt.Sprintf(" [label=%s]", quoteDotID(l))
			}
		}
		if _, err := fmt.Fprintf(w, "  %s -> %s%s;\n", quoteDotID(e.From), quoteDotID(e.To), label); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// Dot returns the DOT rendering as a string with default options.
func (g *Digraph) Dot(name string) string {
	var b strings.Builder
	_ = g.WriteDot(&b, DotOptions{Name: name})
	return b.String()
}

// quoteDotID quotes an identifier for DOT output if needed.
func quoteDotID(s string) string {
	plain := s != ""
	for i, r := range s {
		alpha := r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z'
		digit := r >= '0' && r <= '9'
		if !(alpha || digit && i > 0) {
			plain = false
			break
		}
	}
	if plain {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}

// WriteAdjacency renders a human-readable adjacency listing:
//
//	A -> B C
//	B -> E
//
// sorted by vertex, useful in CLI output and golden tests.
func (g *Digraph) WriteAdjacency(w io.Writer) error {
	for _, v := range g.Vertices() {
		succs := g.Successors(v)
		if len(succs) == 0 {
			if _, err := fmt.Fprintf(w, "%s ->\n", v); err != nil {
				return err
			}
			continue
		}
		sort.Strings(succs)
		if _, err := fmt.Fprintf(w, "%s -> %s\n", v, strings.Join(succs, " ")); err != nil {
			return err
		}
	}
	return nil
}
