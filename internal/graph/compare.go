package graph

// Diff summarizes an edge-set comparison of a mined graph against a reference
// graph, as used to produce Table 2 ("programmatically comparing the edge-set
// of the two graphs").
type Diff struct {
	// Common counts edges present in both graphs.
	Common int
	// MissingEdges are reference edges absent from the mined graph.
	MissingEdges []Edge
	// ExtraEdges are mined edges absent from the reference graph.
	ExtraEdges []Edge
	// MissingVertices / ExtraVertices are vertex-set differences.
	MissingVertices []string
	ExtraVertices   []string
}

// Equal reports whether the two graphs have identical vertex and edge sets.
func (d Diff) Equal() bool {
	return len(d.MissingEdges) == 0 && len(d.ExtraEdges) == 0 &&
		len(d.MissingVertices) == 0 && len(d.ExtraVertices) == 0
}

// Supergraph reports whether the mined graph contains every reference vertex
// and edge (it may have extras). The paper notes the 50-vertex experiment
// "eventually found a supergraph of the original graph".
func (d Diff) Supergraph() bool {
	return len(d.MissingEdges) == 0 && len(d.MissingVertices) == 0
}

// Precision returns |common| / |mined edges|, or 1 when the mined graph has
// no edges.
func (d Diff) Precision() float64 {
	mined := d.Common + len(d.ExtraEdges)
	if mined == 0 {
		return 1
	}
	return float64(d.Common) / float64(mined)
}

// Recall returns |common| / |reference edges|, or 1 when the reference graph
// has no edges.
func (d Diff) Recall() float64 {
	ref := d.Common + len(d.MissingEdges)
	if ref == 0 {
		return 1
	}
	return float64(d.Common) / float64(ref)
}

// Compare diffs mined against reference.
func Compare(reference, mined *Digraph) Diff {
	var d Diff
	for _, v := range reference.Vertices() {
		if !mined.HasVertex(v) {
			d.MissingVertices = append(d.MissingVertices, v)
		}
	}
	for _, v := range mined.Vertices() {
		if !reference.HasVertex(v) {
			d.ExtraVertices = append(d.ExtraVertices, v)
		}
	}
	for _, e := range reference.Edges() {
		if mined.HasEdge(e.From, e.To) {
			d.Common++
		} else {
			d.MissingEdges = append(d.MissingEdges, e)
		}
	}
	for _, e := range mined.Edges() {
		if !reference.HasEdge(e.From, e.To) {
			d.ExtraEdges = append(d.ExtraEdges, e)
		}
	}
	return d
}

// EqualGraphs reports whether a and b have identical vertex and edge sets.
func EqualGraphs(a, b *Digraph) bool { return Compare(a, b).Equal() }
