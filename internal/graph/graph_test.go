package graph

import (
	"reflect"
	"testing"
)

func TestAddVertexIdempotent(t *testing.T) {
	g := New()
	i := g.AddVertex("A")
	j := g.AddVertex("A")
	if i != j {
		t.Fatalf("AddVertex returned different indices %d, %d for same label", i, j)
	}
	if g.NumVertices() != 1 {
		t.Fatalf("NumVertices = %d, want 1", g.NumVertices())
	}
}

func TestAddEdgeCreatesVertices(t *testing.T) {
	g := New()
	if !g.AddEdge("A", "B") {
		t.Fatal("AddEdge(A,B) = false on first insertion")
	}
	if g.AddEdge("A", "B") {
		t.Fatal("AddEdge(A,B) = true on duplicate insertion")
	}
	if !g.HasVertex("A") || !g.HasVertex("B") {
		t.Fatal("AddEdge did not create endpoint vertices")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestRemoveEdge(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"}, Edge{"B", "C"})
	if !g.RemoveEdge("A", "B") {
		t.Fatal("RemoveEdge(A,B) = false for existing edge")
	}
	if g.RemoveEdge("A", "B") {
		t.Fatal("RemoveEdge(A,B) = true for already-removed edge")
	}
	if g.RemoveEdge("X", "Y") {
		t.Fatal("RemoveEdge on unknown vertices = true")
	}
	if g.HasEdge("A", "B") {
		t.Fatal("edge A->B still present after removal")
	}
	if !g.HasEdge("B", "C") {
		t.Fatal("unrelated edge B->C was removed")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestHasEdgeUnknownVertices(t *testing.T) {
	g := New()
	if g.HasEdge("A", "B") {
		t.Fatal("HasEdge on empty graph = true")
	}
	g.AddVertex("A")
	if g.HasEdge("A", "B") {
		t.Fatal("HasEdge with missing target = true")
	}
}

func TestVerticesSorted(t *testing.T) {
	g := New()
	for _, v := range []string{"C", "A", "B"} {
		g.AddVertex(v)
	}
	got := g.Vertices()
	want := []string{"A", "B", "C"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Vertices() = %v, want %v", got, want)
	}
}

func TestEdgesSorted(t *testing.T) {
	g := NewFromEdges(Edge{"B", "C"}, Edge{"A", "C"}, Edge{"A", "B"})
	got := g.Edges()
	want := []Edge{{"A", "B"}, {"A", "C"}, {"B", "C"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Edges() = %v, want %v", got, want)
	}
}

func TestSuccessorsPredecessors(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"}, Edge{"A", "C"}, Edge{"B", "C"})
	if got, want := g.Successors("A"), []string{"B", "C"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Successors(A) = %v, want %v", got, want)
	}
	if got, want := g.Predecessors("C"), []string{"A", "B"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Predecessors(C) = %v, want %v", got, want)
	}
	if got := g.Successors("missing"); got != nil {
		t.Errorf("Successors(missing) = %v, want nil", got)
	}
	if got := g.Predecessors("missing"); got != nil {
		t.Errorf("Predecessors(missing) = %v, want nil", got)
	}
}

func TestDegrees(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"}, Edge{"A", "C"}, Edge{"B", "C"})
	if g.OutDegree("A") != 2 || g.InDegree("A") != 0 {
		t.Errorf("A degrees = out %d in %d, want out 2 in 0", g.OutDegree("A"), g.InDegree("A"))
	}
	if g.OutDegree("C") != 0 || g.InDegree("C") != 2 {
		t.Errorf("C degrees = out %d in %d, want out 0 in 2", g.OutDegree("C"), g.InDegree("C"))
	}
	if g.OutDegree("zz") != 0 || g.InDegree("zz") != 0 {
		t.Error("degrees of unknown vertex not 0")
	}
}

func TestSourcesSinks(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"}, Edge{"A", "C"}, Edge{"B", "D"}, Edge{"C", "D"})
	if got, want := g.Sources(), []string{"A"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Sources = %v, want %v", got, want)
	}
	if got, want := g.Sinks(), []string{"D"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Sinks = %v, want %v", got, want)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"})
	c := g.Clone()
	c.AddEdge("B", "C")
	if g.HasEdge("B", "C") {
		t.Fatal("mutating clone affected original")
	}
	if !c.HasEdge("A", "B") {
		t.Fatal("clone missing original edge")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"}, Edge{"B", "C"}, Edge{"A", "C"}, Edge{"C", "D"})
	sub := g.InducedSubgraph([]string{"A", "B", "C", "nonexistent"})
	if sub.NumVertices() != 3 {
		t.Fatalf("induced subgraph has %d vertices, want 3", sub.NumVertices())
	}
	wantEdges := []Edge{{"A", "B"}, {"A", "C"}, {"B", "C"}}
	if !reflect.DeepEqual(sub.Edges(), wantEdges) {
		t.Fatalf("induced edges = %v, want %v", sub.Edges(), wantEdges)
	}
	if sub.HasVertex("D") {
		t.Fatal("induced subgraph contains excluded vertex D")
	}
}

func TestReverse(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"}, Edge{"B", "C"})
	r := g.Reverse()
	if !r.HasEdge("B", "A") || !r.HasEdge("C", "B") {
		t.Fatal("Reverse missing flipped edges")
	}
	if r.HasEdge("A", "B") {
		t.Fatal("Reverse kept original edge direction")
	}
	if r.NumVertices() != 3 || r.NumEdges() != 2 {
		t.Fatalf("Reverse has %d vertices %d edges, want 3, 2", r.NumVertices(), r.NumEdges())
	}
}

func TestStringStable(t *testing.T) {
	g := NewFromEdges(Edge{"B", "C"}, Edge{"A", "B"})
	want := "V={A,B,C} E={A->B,B->C}"
	if got := g.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestSelfLoopAllowed(t *testing.T) {
	g := New()
	if !g.AddEdge("A", "A") {
		t.Fatal("self-loop rejected")
	}
	if !g.HasEdge("A", "A") {
		t.Fatal("self-loop not stored")
	}
	if g.NumEdges() != 1 || g.NumVertices() != 1 {
		t.Fatalf("got %d edges %d vertices, want 1, 1", g.NumEdges(), g.NumVertices())
	}
}

func TestIndexOfUnknown(t *testing.T) {
	g := New()
	if _, err := g.indexOf("nope"); err == nil {
		t.Fatal("indexOf(unknown) returned nil error")
	}
}
