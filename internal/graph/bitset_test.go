package graph

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d, want 130", b.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 129} {
		b.Set(i)
		if !b.Has(i) {
			t.Errorf("Has(%d) = false after Set", i)
		}
	}
	if b.Count() != 7 {
		t.Fatalf("Count = %d, want 7", b.Count())
	}
	b.Clear(64)
	if b.Has(64) {
		t.Error("Has(64) = true after Clear")
	}
	if b.Count() != 6 {
		t.Fatalf("Count = %d, want 6", b.Count())
	}
}

func TestBitsetOutOfRange(t *testing.T) {
	b := NewBitset(10)
	b.Set(-1)
	b.Set(10)
	b.Set(100)
	if b.Count() != 0 {
		t.Fatalf("out-of-range Set changed the set: count=%d", b.Count())
	}
	if b.Has(-1) || b.Has(10) {
		t.Error("Has(out of range) = true")
	}
	b.Clear(-5) // must not panic
	b.Clear(99)
}

func TestBitsetZeroCapacity(t *testing.T) {
	b := NewBitset(0)
	b.Set(0)
	if b.Count() != 0 {
		t.Error("zero-capacity bitset accepted an element")
	}
	nb := NewBitset(-3)
	if nb.Len() != 0 {
		t.Errorf("negative capacity normalized to %d, want 0", nb.Len())
	}
}

func TestBitsetOrAndNot(t *testing.T) {
	a := NewBitset(100)
	b := NewBitset(100)
	a.Set(1)
	a.Set(70)
	b.Set(70)
	b.Set(99)
	a.Or(b)
	if got, want := a.Elements(), []int{1, 70, 99}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after Or, elements = %v, want %v", got, want)
	}
	a.AndNot(b)
	if got, want := a.Elements(), []int{1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after AndNot, elements = %v, want %v", got, want)
	}
}

func TestBitsetIntersects(t *testing.T) {
	a := NewBitset(100)
	b := NewBitset(100)
	a.Set(5)
	b.Set(6)
	if a.Intersects(b) {
		t.Error("disjoint sets reported intersecting")
	}
	b.Set(5)
	if !a.Intersects(b) {
		t.Error("overlapping sets reported disjoint")
	}
}

func TestBitsetCopyIndependence(t *testing.T) {
	a := NewBitset(64)
	a.Set(3)
	c := a.Copy()
	c.Set(7)
	if a.Has(7) {
		t.Error("mutating copy affected original")
	}
	if !c.Has(3) {
		t.Error("copy lost original element")
	}
	if !a.Equal(a.Copy()) {
		t.Error("copy not Equal to original")
	}
}

func TestBitsetEqual(t *testing.T) {
	a := NewBitset(64)
	b := NewBitset(64)
	if !a.Equal(b) {
		t.Error("two empty sets not equal")
	}
	a.Set(10)
	if a.Equal(b) {
		t.Error("different sets reported equal")
	}
	c := NewBitset(128)
	if a.Equal(c) {
		t.Error("sets with different capacity reported equal")
	}
}

func TestBitsetReset(t *testing.T) {
	a := NewBitset(200)
	for i := 0; i < 200; i += 3 {
		a.Set(i)
	}
	a.Reset()
	if a.Count() != 0 {
		t.Fatalf("Count after Reset = %d, want 0", a.Count())
	}
}

func TestBitsetElementsSorted(t *testing.T) {
	f := func(xs []uint8) bool {
		b := NewBitset(256)
		seen := map[int]bool{}
		for _, x := range xs {
			b.Set(int(x))
			seen[int(x)] = true
		}
		els := b.Elements()
		if len(els) != len(seen) {
			return false
		}
		for i, e := range els {
			if !seen[e] {
				return false
			}
			if i > 0 && els[i-1] >= e {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
