package graph

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTransitiveReductionTriangle(t *testing.T) {
	// A->B->C plus shortcut A->C; reduction drops the shortcut.
	g := NewFromEdges(Edge{"A", "B"}, Edge{"B", "C"}, Edge{"A", "C"})
	red, err := g.TransitiveReduction()
	if err != nil {
		t.Fatalf("TransitiveReduction: %v", err)
	}
	want := []Edge{{"A", "B"}, {"B", "C"}}
	if !reflect.DeepEqual(red.Edges(), want) {
		t.Fatalf("reduction edges = %v, want %v", red.Edges(), want)
	}
}

func TestTransitiveReductionDiamondKeepsAll(t *testing.T) {
	// Diamond A->{B,C}->D has no redundant edges.
	g := NewFromEdges(Edge{"A", "B"}, Edge{"A", "C"}, Edge{"B", "D"}, Edge{"C", "D"})
	red, err := g.TransitiveReduction()
	if err != nil {
		t.Fatalf("TransitiveReduction: %v", err)
	}
	if red.NumEdges() != 4 {
		t.Fatalf("reduction has %d edges, want 4: %v", red.NumEdges(), red.Edges())
	}
}

func TestTransitiveReductionLongShortcuts(t *testing.T) {
	// Chain A->B->C->D->E plus shortcuts at all spans.
	g := NewFromEdges(
		Edge{"A", "B"}, Edge{"B", "C"}, Edge{"C", "D"}, Edge{"D", "E"},
		Edge{"A", "C"}, Edge{"A", "D"}, Edge{"A", "E"},
		Edge{"B", "D"}, Edge{"B", "E"}, Edge{"C", "E"},
	)
	red, err := g.TransitiveReduction()
	if err != nil {
		t.Fatalf("TransitiveReduction: %v", err)
	}
	want := []Edge{{"A", "B"}, {"B", "C"}, {"C", "D"}, {"D", "E"}}
	if !reflect.DeepEqual(red.Edges(), want) {
		t.Fatalf("reduction edges = %v, want %v", red.Edges(), want)
	}
}

func TestTransitiveReductionPaperExample6(t *testing.T) {
	// Example 6 / Figure 3: after step 3 on log {ABCDE, ACDBE, ACBDE} the
	// graph has these edges; the reduction must be
	// A->B, A->C, C->D, B->E, D->E.
	g := NewFromEdges(
		Edge{"A", "B"}, Edge{"A", "C"}, Edge{"A", "D"}, Edge{"A", "E"},
		Edge{"B", "E"},
		Edge{"C", "D"}, Edge{"C", "E"},
		Edge{"D", "E"},
	)
	red, err := g.TransitiveReduction()
	if err != nil {
		t.Fatalf("TransitiveReduction: %v", err)
	}
	want := []Edge{{"A", "B"}, {"A", "C"}, {"B", "E"}, {"C", "D"}, {"D", "E"}}
	if !reflect.DeepEqual(red.Edges(), want) {
		t.Fatalf("reduction edges = %v, want %v", red.Edges(), want)
	}
}

func TestTransitiveReductionCyclicError(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"}, Edge{"B", "A"})
	if _, err := g.TransitiveReduction(); !errors.Is(err, ErrCyclic) {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
	if _, err := TransitiveReductionNaive(g); !errors.Is(err, ErrCyclic) {
		t.Fatalf("naive err = %v, want ErrCyclic", err)
	}
	if err := g.ReduceInPlace(); !errors.Is(err, ErrCyclic) {
		t.Fatalf("ReduceInPlace err = %v, want ErrCyclic", err)
	}
}

func TestReduceInPlace(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"}, Edge{"B", "C"}, Edge{"A", "C"})
	if err := g.ReduceInPlace(); err != nil {
		t.Fatalf("ReduceInPlace: %v", err)
	}
	if g.HasEdge("A", "C") {
		t.Fatal("shortcut A->C survived ReduceInPlace")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
}

// randomDAG builds a random DAG over n vertices where each forward pair gets
// an edge with probability p. Vertex labels are v0..v{n-1} in topological
// order by construction.
func randomDAG(rng *rand.Rand, n int, p float64) *Digraph {
	g := New()
	labels := make([]string, n)
	for i := range labels {
		labels[i] = "v" + itoa(i)
		g.AddVertex(labels[i])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(labels[i], labels[j])
			}
		}
	}
	return g
}

func TestTransitiveReductionPreservesClosureProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		n := 2 + int(rng.Int31n(14))
		g := randomDAG(rng, n, 0.3)
		red, err := g.TransitiveReduction()
		if err != nil {
			return false
		}
		// Closure must be preserved and the reduction must be a subgraph.
		if !g.SameClosure(red) {
			return false
		}
		for _, e := range red.Edges() {
			if !g.HasEdge(e.From, e.To) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestTransitiveReductionMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		n := 2 + rng.Intn(12)
		g := randomDAG(rng, n, 0.35)
		fast, err := g.TransitiveReduction()
		if err != nil {
			t.Fatalf("fast: %v", err)
		}
		naive, err := TransitiveReductionNaive(g)
		if err != nil {
			t.Fatalf("naive: %v", err)
		}
		if !EqualGraphs(fast, naive) {
			t.Fatalf("fast and naive reductions differ on %v:\nfast:  %v\nnaive: %v",
				g, fast, naive)
		}
	}
}

func TestTransitiveReductionIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		g := randomDAG(rng, 2+rng.Intn(12), 0.4)
		r1, err := g.TransitiveReduction()
		if err != nil {
			t.Fatal(err)
		}
		r2, err := r1.TransitiveReduction()
		if err != nil {
			t.Fatal(err)
		}
		if !EqualGraphs(r1, r2) {
			t.Fatalf("reduction not idempotent on %v", g)
		}
	}
}

func TestTransitiveClosure(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"}, Edge{"B", "C"})
	c := g.TransitiveClosure()
	want := []Edge{{"A", "B"}, {"A", "C"}, {"B", "C"}}
	if !reflect.DeepEqual(c.Edges(), want) {
		t.Fatalf("closure edges = %v, want %v", c.Edges(), want)
	}
}

func TestTransitiveClosureCyclic(t *testing.T) {
	g := NewFromEdges(Edge{"A", "B"}, Edge{"B", "A"}, Edge{"B", "C"})
	c := g.TransitiveClosure()
	// Everything on or after the cycle is reachable, including self-loops.
	for _, e := range []Edge{{"A", "A"}, {"A", "B"}, {"A", "C"}, {"B", "A"}, {"B", "B"}, {"B", "C"}} {
		if !c.HasEdge(e.From, e.To) {
			t.Errorf("closure missing %v", e)
		}
	}
	if c.HasEdge("C", "A") {
		t.Error("closure has spurious edge C->A")
	}
}

func TestSameClosure(t *testing.T) {
	a := NewFromEdges(Edge{"A", "B"}, Edge{"B", "C"}, Edge{"A", "C"})
	b := NewFromEdges(Edge{"A", "B"}, Edge{"B", "C"})
	if !a.SameClosure(b) {
		t.Error("graphs with same closure reported different")
	}
	c := NewFromEdges(Edge{"A", "B"})
	if a.SameClosure(c) {
		t.Error("different-vertex-set graphs reported same closure")
	}
	d := NewFromEdges(Edge{"A", "B"}, Edge{"C", "B"})
	if b.SameClosure(d) {
		t.Error("different closures reported same")
	}
}
