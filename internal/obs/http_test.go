package obs

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// okHandler is a named handler type so tests mirror production wiring
// (interface methods, not bare func values).
type okHandler struct {
	status int
	body   string
}

func (h *okHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Drain the body so request-byte accounting has something to count.
	_, _ = io.Copy(io.Discard, r.Body)
	if h.status != http.StatusOK {
		w.WriteHeader(h.status)
	}
	_, _ = io.WriteString(w, h.body)
}

func TestMiddlewareRecordsByRouteAndClass(t *testing.T) {
	reg := NewRegistry()
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	m := NewHTTPMetrics(reg, "testsvc", logger)

	ok := m.Wrap("/ok", &okHandler{status: http.StatusOK, body: "hello"})
	throttled := m.Wrap("/busy", &okHandler{status: http.StatusTooManyRequests, body: "slow down"})

	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		ok.ServeHTTP(rec, httptest.NewRequest("POST", "/ok", strings.NewReader("payload")))
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d", rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	throttled.ServeHTTP(rec, httptest.NewRequest("GET", "/busy", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d", rec.Code)
	}

	lat2xx := reg.Histogram("testsvc_http_request_seconds", "", LatencyBuckets(), L("route", "/ok"), L("class", "2xx"))
	if got := lat2xx.Count(); got != 3 {
		t.Errorf("2xx latency count = %d, want 3", got)
	}
	lat4xx := reg.Histogram("testsvc_http_request_seconds", "", LatencyBuckets(), L("route", "/busy"), L("class", "4xx"))
	if got := lat4xx.Count(); got != 1 {
		t.Errorf("4xx latency count = %d, want 1", got)
	}
	req2xx := reg.Histogram("testsvc_http_request_bytes", "", SizeBuckets(), L("route", "/ok"), L("class", "2xx"))
	if got := req2xx.Sum(); got != float64(3*len("payload")) {
		t.Errorf("request bytes sum = %v, want %d", got, 3*len("payload"))
	}
	rsp2xx := reg.Histogram("testsvc_http_response_bytes", "", SizeBuckets(), L("route", "/ok"), L("class", "2xx"))
	if got := rsp2xx.Sum(); got != float64(3*len("hello")) {
		t.Errorf("response bytes sum = %v, want %d", got, 3*len("hello"))
	}
	logs := logBuf.String()
	if !strings.Contains(logs, `"route":"/ok"`) || !strings.Contains(logs, `"status":429`) {
		t.Errorf("request logs missing expected fields:\n%s", logs)
	}
}

func TestClassIndexClamps(t *testing.T) {
	cases := map[int]int{200: 1, 404: 3, 599: 4, 99: 4, 700: 4, 0: 4}
	for status, want := range cases {
		if got := classIndex(status); got != want {
			t.Errorf("classIndex(%d) = %d, want %d", status, got, want)
		}
	}
}

func TestMetricsHandlerContentType(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "Up.").Inc()
	rec := httptest.NewRecorder()
	MetricsHandler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ExpositionContentType {
		t.Errorf("Content-Type = %q, want %q", ct, ExpositionContentType)
	}
	if !strings.Contains(rec.Body.String(), "up_total 1") {
		t.Errorf("exposition missing sample:\n%s", rec.Body.String())
	}
}

func TestAdminMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("seen_total", "Seen.", L("shard", "0")).Add(2)
	mux := NewAdminMux(reg)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `seen_total{shard="0"} 2`) {
		t.Errorf("/metrics: code %d body:\n%s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/obs", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/obs: code %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/debug/obs Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), `"seen_total"`) {
		t.Errorf("/debug/obs missing family:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("/debug/pprof/: code %d", rec.Code)
	}
}
