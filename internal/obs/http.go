package obs

import (
	"io"
	"log/slog"
	"net/http"
	"time"
)

// statusClasses are the label values HTTP series are partitioned by.
// Index = status/100 - 1.
func statusClasses() [5]string {
	return [5]string{"1xx", "2xx", "3xx", "4xx", "5xx"}
}

// classIndex maps a status code to its class index, clamping anything
// outside 100–599 to 5xx (a handler writing a garbage code is a server
// problem).
func classIndex(status int) int {
	i := status/100 - 1
	if i < 0 || i > 4 {
		return 4
	}
	return i
}

// HTTPMetrics instruments http.Handlers with per-route, per-status-class
// latency and size histograms, plus optional structured request logs. All
// series are resolved at Wrap time, so the per-request work is atomic
// increments only.
type HTTPMetrics struct {
	reg    *Registry
	prefix string
	log    *slog.Logger
}

// NewHTTPMetrics returns an instrumenter writing series prefixed with
// prefix (e.g. "procmined") into reg. logger may be nil to disable request
// logs.
func NewHTTPMetrics(reg *Registry, prefix string, logger *slog.Logger) *HTTPMetrics {
	return &HTTPMetrics{reg: reg, prefix: prefix, log: logger}
}

// routeSeries holds the pre-resolved series for one route, indexed by
// status class.
type routeSeries struct {
	latency [5]*Histogram
	reqSize [5]*Histogram
	rspSize [5]*Histogram
}

// statusRecorder captures the status code and body size a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// countingReader counts bytes actually read from a request body.
type countingReader struct {
	rc io.ReadCloser
	n  int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReader) Close() error { return c.rc.Close() }

// instrumented is the wrapped handler; a named type keeps the call graph
// fully resolved for the vet suite (ServeHTTP is an interface method, not
// a bare func value).
type instrumented struct {
	m     *HTTPMetrics
	route string
	sr    routeSeries
	next  http.Handler
}

func (h *instrumented) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	body := &countingReader{rc: r.Body}
	r.Body = body
	rec := &statusRecorder{ResponseWriter: w}
	h.next.ServeHTTP(rec, r)
	if rec.status == 0 {
		rec.status = http.StatusOK
	}
	elapsed := time.Since(start).Seconds()
	i := classIndex(rec.status)
	h.sr.latency[i].Observe(elapsed)
	h.sr.reqSize[i].Observe(float64(body.n))
	h.sr.rspSize[i].Observe(float64(rec.bytes))
	if h.m.log != nil {
		h.m.log.Info("http request",
			"route", h.route,
			"method", r.Method,
			"status", rec.status,
			"duration_seconds", elapsed,
			"request_bytes", body.n,
			"response_bytes", rec.bytes,
		)
	}
}

// Wrap instruments next under the given route label. Series for all five
// status classes are created eagerly so the exposition shape is stable
// from startup and the request path never takes the registry lock.
func (m *HTTPMetrics) Wrap(route string, next http.Handler) http.Handler {
	h := &instrumented{m: m, route: route, next: next}
	classes := statusClasses()
	for i, class := range classes {
		labels := []Label{L("route", route), L("class", class)}
		h.sr.latency[i] = m.reg.Histogram(m.prefix+"_http_request_seconds",
			"HTTP request latency by route and status class.", LatencyBuckets(), labels...)
		h.sr.reqSize[i] = m.reg.Histogram(m.prefix+"_http_request_bytes",
			"HTTP request body bytes read, by route and status class.", SizeBuckets(), labels...)
		h.sr.rspSize[i] = m.reg.Histogram(m.prefix+"_http_response_bytes",
			"HTTP response body bytes written, by route and status class.", SizeBuckets(), labels...)
	}
	return h
}

// metricsHandler serves the registry's Prometheus exposition.
type metricsHandler struct {
	reg *Registry
}

func (h *metricsHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", ExpositionContentType)
	// Errors past the header are client disconnects; nothing to do.
	_ = h.reg.WritePrometheus(w)
}

// MetricsHandler returns the GET /metrics handler for the registry.
func MetricsHandler(reg *Registry) http.Handler { return &metricsHandler{reg: reg} }
