// Package obs is the stdlib-only observability layer: a metrics registry
// (atomic counters, gauges, and fixed-bucket histograms with Prometheus
// text exposition), a lightweight stage-span API for tracing the mining
// pipeline, HTTP server instrumentation, and the admin/debug mux that
// exposes pprof and the registry dump.
//
// The design constraints mirror the repo's own vet suite:
//
//   - No package-level mutable state (noglobals): a Registry is built with
//     NewRegistry and injected wherever instrumentation lives, so two
//     servers in one process never share a metric by accident.
//   - Nothing reachable from a //procmine:hot kernel touches metrics
//     (hotalloc): instrumentation belongs at the orchestration layer —
//     request handlers, shard ingest, stage boundaries — never inside the
//     alloc-free scan and marking loops. Series handles are resolved once,
//     up front, and the per-event operations (Counter.Add, Gauge.Set,
//     Histogram.Observe) are single atomic instructions, but even those are
//     off-limits inside hot kernels.
//   - Exposition is deterministic (mapiterorder): families and series are
//     emitted in sorted order, byte-identical for identical registry state.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key="value" pair qualifying a metric series.
type Label struct {
	Key, Value string
}

// L builds a Label; it keeps call sites short.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// kind is the exposition type of a metric family.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// Counter is a monotonically increasing series. Increments are lock-free
// atomic adds; the registry lock is taken only when the series is first
// resolved.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a series that can go up and down, stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add accumulates onto the gauge via CAS.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Observe is lock-free: one
// atomic increment for the bucket, one for the count, and a CAS loop for
// the float64 sum.
type Histogram struct {
	bounds []float64      // sorted upper bounds, exclusive of +Inf
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// LatencyBuckets returns the default duration buckets in seconds: 100µs to
// ~40s in 4× steps, a range that covers both the sub-millisecond ingest
// path and a worst-case mine under load.
func LatencyBuckets() []float64 {
	return []float64{0.0001, 0.0004, 0.0016, 0.0064, 0.0256, 0.1024, 0.4096, 1.6384, 6.5536, 26.2144}
}

// SizeBuckets returns the default byte-size buckets: 256 B to 16 MiB in 4×
// steps, covering request bodies from a single event to a bulk snapshot.
func SizeBuckets() []float64 {
	return []float64{256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216}
}

// series is one labeled instance within a family.
type series struct {
	labels []Label // sorted by key
	key    string  // canonical rendering of labels, the sort key
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups all series of one metric name.
type family struct {
	name, help string
	kind       kind
	buckets    []float64 // histograms only
	series     map[string]*series
}

// Registry holds metric families and renders them. The zero value is not
// usable; construct with NewRegistry and inject it (never store one in a
// package-level variable).
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// labelKey canonicalizes a label set: sorted by key, rendered once. The
// rendered form doubles as the exposition order.
func labelKey(labels []Label) (sorted []Label, key string) {
	sorted = append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	if len(sorted) == 0 {
		return sorted, ""
	}
	var b strings.Builder
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return sorted, b.String()
}

// lookup returns the family, creating it on first use and rejecting
// kind/bucket redefinition: two call sites disagreeing about what a name
// means is a programming error worth failing loudly on.
func (r *Registry) lookup(name, help string, k kind, buckets []float64, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, buckets: append([]float64(nil), buckets...), series: map[string]*series{}}
		r.fams[name] = f
	} else if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, k))
	}
	sorted, key := labelKey(labels)
	s := f.series[key]
	if s == nil {
		s = &series{labels: sorted, key: key}
		switch k {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = &Histogram{bounds: f.buckets, counts: make([]atomic.Int64, len(f.buckets)+1)}
		}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter series for name with the given labels,
// creating family and series on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, kindCounter, nil, labels).c
}

// Gauge returns the gauge series for name with the given labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, kindGauge, nil, labels).g
}

// Histogram returns the histogram series for name with the given labels.
// The bucket bounds are fixed by the first registration of the name;
// subsequent calls reuse them.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return r.lookup(name, help, kindHistogram, buckets, labels).h
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes a HELP string per the Prometheus text format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a sample value; integral floats print without an
// exponent so counters read naturally.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sampleLine writes one `name{labels} value` line. extra holds labels
// appended after the series labels (the histogram `le`).
func sampleLine(w io.Writer, name, seriesKey string, extra []Label, value string) error {
	var b strings.Builder
	b.WriteString(name)
	if seriesKey != "" || len(extra) > 0 {
		b.WriteByte('{')
		b.WriteString(seriesKey)
		for i, l := range extra {
			if i > 0 || seriesKey != "" {
				b.WriteByte(',')
			}
			b.WriteString(l.Key)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// ExpositionContentType is the Content-Type of the Prometheus text format
// WritePrometheus emits.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the registry in the Prometheus text exposition
// format, deterministically: families sorted by name, series sorted by
// their canonical label rendering, histogram buckets cumulative and
// terminated by le="+Inf".
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.sorted() {
			switch f.kind {
			case kindCounter:
				if err := sampleLine(w, f.name, s.key, nil, strconv.FormatInt(s.c.Value(), 10)); err != nil {
					return err
				}
			case kindGauge:
				if err := sampleLine(w, f.name, s.key, nil, formatFloat(s.g.Value())); err != nil {
					return err
				}
			case kindHistogram:
				cum := int64(0)
				for i, bound := range s.h.bounds {
					cum += s.h.counts[i].Load()
					le := []Label{L("le", formatFloat(bound))}
					if err := sampleLine(w, f.name+"_bucket", s.key, le, strconv.FormatInt(cum, 10)); err != nil {
						return err
					}
				}
				cum += s.h.counts[len(s.h.bounds)].Load()
				if err := sampleLine(w, f.name+"_bucket", s.key, []Label{L("le", "+Inf")}, strconv.FormatInt(cum, 10)); err != nil {
					return err
				}
				if err := sampleLine(w, f.name+"_sum", s.key, nil, formatFloat(s.h.Sum())); err != nil {
					return err
				}
				if err := sampleLine(w, f.name+"_count", s.key, nil, strconv.FormatInt(s.h.Count(), 10)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// snapshotFamilies copies the family list under the registry lock, sorted
// by name. The per-series values are read later via atomics, so exposition
// never holds the lock across I/O.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sorted returns the family's series ordered by canonical label key.
// Creating series while exposition runs is safe: the map is copied under
// the registry lock by the caller holding no lock here — series maps are
// only mutated under Registry.mu, so take it for the copy.
func (f *family) sorted() []*series {
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// DumpSeries is one series row of a registry dump (the /debug/obs view).
type DumpSeries struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value,omitempty"`
	Count  int64             `json:"count,omitempty"`
	Sum    float64           `json:"sum,omitempty"`
}

// DumpFamily is one metric family of a registry dump.
type DumpFamily struct {
	Name   string       `json:"name"`
	Kind   string       `json:"kind"`
	Help   string       `json:"help"`
	Series []DumpSeries `json:"series"`
}

// Dump projects the registry into a JSON-friendly structure, sorted the
// same way as the exposition.
func (r *Registry) Dump() []DumpFamily {
	fams := r.snapshotFamilies()
	out := make([]DumpFamily, 0, len(fams))
	for _, f := range fams {
		df := DumpFamily{Name: f.name, Kind: string(f.kind), Help: f.help}
		for _, s := range f.sorted() {
			ds := DumpSeries{}
			if len(s.labels) > 0 {
				ds.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					ds.Labels[l.Key] = l.Value
				}
			}
			switch f.kind {
			case kindCounter:
				ds.Value = float64(s.c.Value())
			case kindGauge:
				ds.Value = s.g.Value()
			case kindHistogram:
				ds.Count = s.h.Count()
				ds.Sum = s.h.Sum()
			}
			df.Series = append(df.Series, ds)
		}
		out = append(out, df)
	}
	return out
}
