package obs

import (
	"bytes"
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramSemantics(t *testing.T) {
	r := NewRegistry()

	c := r.Counter("jobs_total", "Jobs.", L("kind", "a"))
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("jobs_total", "Jobs.", L("kind", "a")); again != c {
		t.Error("same name+labels did not return the same counter")
	}
	if other := r.Counter("jobs_total", "Jobs.", L("kind", "b")); other == c {
		t.Error("different labels returned the same counter")
	}

	g := r.Gauge("depth", "Depth.")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}

	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("histogram count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-56.05) > 1e-9 {
		t.Errorf("histogram sum = %v, want 56.05", got)
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.")
	defer func() {
		if recover() == nil {
			t.Error("registering x_total as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "X.")
}

func TestBucketPresetsAreSortedAndFresh(t *testing.T) {
	for name, f := range map[string]func() []float64{"latency": LatencyBuckets, "size": SizeBuckets} {
		a, b := f(), f()
		if !sort.Float64sAreSorted(a) {
			t.Errorf("%s buckets not sorted: %v", name, a)
		}
		if len(a) == 0 {
			t.Errorf("%s buckets empty", name)
		}
		a[0] = -1
		if b[0] == -1 {
			t.Errorf("%s buckets share backing storage across calls", name)
		}
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "N.")
	h := r.Histogram("v", "V.", LatencyBuckets())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := h.Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	// Register in deliberately unsorted order.
	r.Counter("z_total", "Z.", L("b", "2"))
	r.Counter("z_total", "Z.", L("a", "1"))
	r.Gauge("a_gauge", "A.")
	r.Histogram("m_seconds", "M.", []float64{1, 2}).Observe(1.5)

	var first, second bytes.Buffer
	if err := r.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Error("two expositions of identical state differ")
	}
	// Families must appear in sorted name order.
	var order []int
	for _, name := range []string{"a_gauge", "m_seconds", "z_total"} {
		order = append(order, strings.Index(first.String(), "# HELP "+name))
	}
	if !sort.IntsAreSorted(order) || order[0] < 0 {
		t.Errorf("families out of order in exposition:\n%s", first.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("e_total", "E.", L("path", `a"b\c`+"\n")).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `e_total{path="a\"b\\c\n"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Errorf("exposition missing escaped sample %q:\n%s", want, buf.String())
	}
}

// expositionLine matches a sample line: name, optional label block, value.
func expositionLineRE() *regexp.Regexp {
	return regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.e+Inf]+)$`)
}

// parseExposition is a strict checker for the Prometheus text format 0.0.4
// subset the registry emits. It verifies line grammar, HELP/TYPE pairing,
// that every sample belongs to the most recent family, and histogram
// invariants (cumulative buckets, +Inf terminal, count == +Inf bucket).
func parseExposition(t *testing.T, text string) (families map[string]string, samples int) {
	t.Helper()
	families = map[string]string{}
	lineRE := expositionLineRE()
	var curName, curKind string
	var lastBucket float64
	var lastCum int64
	bucketSeen := map[string]bool{} // series key -> saw +Inf
	infCount := map[string]int64{}
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			if _, dup := families[name]; dup {
				t.Fatalf("line %d: duplicate family %q", ln+1, name)
			}
			curName, curKind = name, ""
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 || fields[0] != curName {
				t.Fatalf("line %d: TYPE does not follow its HELP: %q", ln+1, line)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, fields[1])
			}
			curKind = fields[1]
			families[curName] = curKind
			lastBucket, lastCum = math.Inf(-1), 0
		default:
			m := lineRE.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed sample: %q", ln+1, line)
			}
			name, labelBlock, valStr := m[1], m[2], m[3]
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			if curKind == "histogram" {
				if base != curName && name != curName {
					t.Fatalf("line %d: sample %q outside family %q", ln+1, name, curName)
				}
			} else if name != curName {
				t.Fatalf("line %d: sample %q outside family %q", ln+1, name, curName)
			}
			if curKind == "histogram" && strings.HasSuffix(name, "_bucket") {
				leRE := regexp.MustCompile(`,?le="([^"]+)"`)
				lm := leRE.FindStringSubmatch(labelBlock)
				if lm == nil {
					t.Fatalf("line %d: histogram bucket without le label: %q", ln+1, line)
				}
				cum, err := strconv.ParseInt(valStr, 10, 64)
				if err != nil {
					t.Fatalf("line %d: non-integer bucket count %q", ln+1, valStr)
				}
				// The series key is the label block minus le; a labelless
				// histogram leaves "{}", which matches an absent block.
				seriesKey := leRE.ReplaceAllString(labelBlock, "")
				if seriesKey == "{}" {
					seriesKey = ""
				}
				if lm[1] == "+Inf" {
					bucketSeen[curName+seriesKey] = true
					infCount[curName+seriesKey] = cum
					lastBucket, lastCum = math.Inf(-1), 0
				} else {
					bound, err := strconv.ParseFloat(lm[1], 64)
					if err != nil {
						t.Fatalf("line %d: bad le bound %q", ln+1, lm[1])
					}
					if bound <= lastBucket {
						t.Fatalf("line %d: bucket bounds not increasing (%v after %v)", ln+1, bound, lastBucket)
					}
					if cum < lastCum {
						t.Fatalf("line %d: bucket counts not cumulative (%d after %d)", ln+1, cum, lastCum)
					}
					lastBucket, lastCum = bound, cum
				}
			}
			if curKind == "histogram" && strings.HasSuffix(name, "_count") {
				cnt, err := strconv.ParseInt(valStr, 10, 64)
				if err != nil {
					t.Fatalf("line %d: non-integer count %q", ln+1, valStr)
				}
				key := curName + labelBlock
				if !bucketSeen[key] {
					t.Fatalf("line %d: %s_count with no preceding +Inf bucket", ln+1, curName)
				}
				if cnt != infCount[key] {
					t.Fatalf("line %d: count %d != +Inf bucket %d", ln+1, cnt, infCount[key])
				}
			}
			samples++
		}
	}
	return families, samples
}

func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	for shard := 0; shard < 3; shard++ {
		c := r.Counter("procmined_ingest_records_total", "Records.", L("shard", fmt.Sprint(shard)))
		c.Add(int64(10 * (shard + 1)))
	}
	r.Gauge("procmined_breaker_open", "Open breakers.").Set(1)
	h := r.Histogram("procmined_mine_stage_seconds", "Stage time.", LatencyBuckets(), L("stage", "scan"))
	h.Observe(0.002)
	h.Observe(3.7)
	r.Histogram("procmined_http_request_bytes", "Sizes.", SizeBuckets(), L("route", "/ingest"), L("class", "2xx")).Observe(512)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	families, samples := parseExposition(t, buf.String())
	if len(families) != 4 {
		t.Errorf("parsed %d families, want 4: %v", len(families), families)
	}
	if families["procmined_mine_stage_seconds"] != "histogram" {
		t.Errorf("mine_stage_seconds kind = %q, want histogram", families["procmined_mine_stage_seconds"])
	}
	if samples == 0 {
		t.Error("no samples parsed")
	}
}

func TestDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.", L("k", "v")).Add(7)
	r.Histogram("b_seconds", "B.", []float64{1}).Observe(0.5)
	d := r.Dump()
	if len(d) != 2 {
		t.Fatalf("dump has %d families, want 2", len(d))
	}
	if d[0].Name != "a_total" || d[0].Series[0].Value != 7 || d[0].Series[0].Labels["k"] != "v" {
		t.Errorf("counter dump wrong: %+v", d[0])
	}
	if d[1].Name != "b_seconds" || d[1].Series[0].Count != 1 || d[1].Series[0].Sum != 0.5 {
		t.Errorf("histogram dump wrong: %+v", d[1])
	}
}
