package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// debugObsHandler serves the registry dump as JSON (the human-browsable
// twin of /metrics).
type debugObsHandler struct {
	reg *Registry
}

func (h *debugObsHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Dump() is already deterministically sorted; encode errors past the
	// header are client disconnects.
	_ = enc.Encode(h.reg.Dump())
}

// NewAdminMux builds the debug/admin mux served on procmined's
// -admin-addr listener: pprof, the registry dump, and a second /metrics
// mount. It is deliberately a separate mux so profiling and debug
// internals are never reachable on the ingest port.
func NewAdminMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/obs", &debugObsHandler{reg: reg})
	mux.Handle("GET /metrics", MetricsHandler(reg))
	return mux
}
