package obs

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"text/tabwriter"
	"time"
)

// Stage is one completed span of a pipeline trace: how long a named stage
// ran and what it allocated. Alloc figures come from runtime.MemStats
// deltas, so they are process-global approximations — accurate when the
// stage dominates the process (the CLI and the service's mine path), noisy
// when unrelated goroutines allocate concurrently.
type Stage struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Allocs  uint64  `json:"allocs"`
	Bytes   uint64  `json:"bytes"`
}

// Trace collects Stages from a single pipeline run. A nil *Trace is a
// valid no-op: every method, including Start and the returned span's End,
// is safe to call on nil, so instrumented code never branches on whether
// tracing is enabled. Concurrent Start/End calls (per-worker scan spans)
// are serialized by an internal mutex at End only — the measurement window
// itself is lock-free.
type Trace struct {
	mu     sync.Mutex
	stages []Stage
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Span is one in-flight measurement started by Trace.Start.
type Span struct {
	tr        *Trace
	name      string
	start     time.Time
	mallocsAt uint64
	bytesAt   uint64
}

// memCounts reads the cumulative process allocation counters. ReadMemStats
// briefly stops the world; traces wrap coarse pipeline stages, not inner
// loops, so the cost is negligible relative to the stage.
func memCounts() (mallocs, bytes uint64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs, ms.TotalAlloc
}

// Start opens a span for the named stage. On a nil trace it returns nil,
// and End on a nil span is a no-op.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	m, b := memCounts()
	return &Span{tr: t, name: name, start: time.Now(), mallocsAt: m, bytesAt: b}
}

// End closes the span and records its Stage on the parent trace.
func (s *Span) End() {
	if s == nil {
		return
	}
	elapsed := time.Since(s.start).Seconds()
	m, b := memCounts()
	st := Stage{Name: s.name, Seconds: elapsed}
	if m > s.mallocsAt {
		st.Allocs = m - s.mallocsAt
	}
	if b > s.bytesAt {
		st.Bytes = b - s.bytesAt
	}
	s.tr.mu.Lock()
	s.tr.stages = append(s.tr.stages, st)
	s.tr.mu.Unlock()
}

// Stages returns a copy of the recorded stages in completion order. Nil
// traces return nil.
func (t *Trace) Stages() []Stage {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Stage(nil), t.stages...)
}

// WriteStageTable renders stages as an aligned table (the `-trace` output
// of cmd/procmine). It accepts the slice rather than a *Trace so callers
// can render stages recovered from Diagnostics.
func WriteStageTable(w io.Writer, stages []Stage) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if _, err := fmt.Fprintln(tw, "STAGE\tSECONDS\tALLOCS\tBYTES"); err != nil {
		return err
	}
	var totalSec float64
	var totalAllocs, totalBytes uint64
	for _, s := range stages {
		totalSec += s.Seconds
		totalAllocs += s.Allocs
		totalBytes += s.Bytes
		if _, err := fmt.Fprintf(tw, "%s\t%.6f\t%d\t%d\n", s.Name, s.Seconds, s.Allocs, s.Bytes); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(tw, "total\t%.6f\t%d\t%d\n", totalSec, totalAllocs, totalBytes); err != nil {
		return err
	}
	return tw.Flush()
}
