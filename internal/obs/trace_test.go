package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	sp := tr.Start("anything")
	if sp != nil {
		t.Fatal("nil trace returned a non-nil span")
	}
	sp.End() // must not panic
	if got := tr.Stages(); got != nil {
		t.Errorf("nil trace stages = %v, want nil", got)
	}
}

func TestTraceRecordsStages(t *testing.T) {
	tr := NewTrace()
	s := tr.Start("decode")
	// strings.Repeat allocates its result on the heap, so the span's
	// MemStats delta must see at least this many bytes.
	sink := strings.Repeat("x", 1<<16)
	if len(sink) != 1<<16 {
		t.Fatal("unexpected repeat length")
	}
	s.End()
	tr.Start("scan").End()

	stages := tr.Stages()
	if len(stages) != 2 {
		t.Fatalf("got %d stages, want 2", len(stages))
	}
	if stages[0].Name != "decode" || stages[1].Name != "scan" {
		t.Errorf("stage order = %q,%q, want decode,scan", stages[0].Name, stages[1].Name)
	}
	if stages[0].Seconds < 0 {
		t.Errorf("negative duration %v", stages[0].Seconds)
	}
	if stages[0].Bytes < 1<<16 {
		t.Errorf("decode stage recorded %d bytes, want >= %d", stages[0].Bytes, 1<<16)
	}
	// Stages returns a copy.
	stages[0].Name = "mutated"
	if tr.Stages()[0].Name != "decode" {
		t.Error("Stages exposed internal storage")
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Start("worker").End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Stages()); got != 200 {
		t.Errorf("recorded %d spans, want 200", got)
	}
}

func TestWriteStageTable(t *testing.T) {
	stages := []Stage{
		{Name: "decode", Seconds: 0.25, Allocs: 10, Bytes: 2048},
		{Name: "scan", Seconds: 0.5, Allocs: 2, Bytes: 64},
	}
	var buf bytes.Buffer
	if err := WriteStageTable(&buf, stages); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"STAGE", "decode", "scan", "total", "0.750000", "2112"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
