package dtree

import "math"

// FeatureImportance attributes the tree's information gain to features:
// each internal node contributes its weighted gain to the feature it splits
// on, and the totals are normalized to sum to 1. In conditions mining this
// answers "which output component o[i] actually drives the branch".
//
// A tree with no internal nodes returns nil.
func (t *Tree) FeatureImportance() []float64 {
	raw := make([]float64, t.Features)
	total := 0.0
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || n.Leaf {
			return
		}
		// Weighted impurity decrease at this node, reconstructed from the
		// positive ratios carried on the nodes.
		parent := entropyP(n.PosRatio) * float64(n.N)
		children := 0.0
		for _, c := range []*Node{n.Left, n.Right} {
			if c != nil {
				children += entropyP(c.PosRatio) * float64(c.N)
			}
		}
		gain := parent - children
		if gain > 0 && n.Feature >= 0 && n.Feature < len(raw) {
			raw[n.Feature] += gain
			total += gain
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.Root)
	if total == 0 {
		return nil
	}
	for i := range raw {
		raw[i] /= total
	}
	return raw
}

// entropyP is the binary entropy of a probability.
func entropyP(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -(p*math.Log2(p) + (1-p)*math.Log2(1-p))
}
