package dtree

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTrainEmpty(t *testing.T) {
	if _, err := Train(nil, Config{}); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
}

func TestPureLeaf(t *testing.T) {
	tr, err := Train([]Example{{X: []int{1}, Y: true}, {X: []int{9}, Y: true}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Root.Leaf || !tr.Root.Class {
		t.Fatalf("all-positive training should yield a positive leaf, got %+v", tr.Root)
	}
	if !tr.Predict([]int{5}) {
		t.Fatal("positive leaf predicted false")
	}
	if tr.Size() != 1 || tr.Depth() != 0 {
		t.Fatalf("Size/Depth = %d/%d, want 1/0", tr.Size(), tr.Depth())
	}
}

func TestSimpleThreshold(t *testing.T) {
	// Learn y = (x[0] >= 5) from exhaustive data.
	var exs []Example
	for v := 0; v < 10; v++ {
		exs = append(exs, Example{X: []int{v}, Y: v >= 5})
	}
	tr, err := Train(exs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := tr.Accuracy(exs); acc != 1 {
		t.Fatalf("training accuracy = %v, want 1", acc)
	}
	for v := 0; v < 10; v++ {
		if tr.Predict([]int{v}) != (v >= 5) {
			t.Errorf("Predict(%d) wrong", v)
		}
	}
	if tr.Depth() != 1 || tr.Size() != 3 {
		t.Errorf("expected a single split, got depth %d size %d", tr.Depth(), tr.Size())
	}
	rules := tr.Rules()
	if len(rules) != 1 || rules[0].String() != "o[0] >= 5" {
		t.Errorf("Rules = %v, want [o[0] >= 5]", rules)
	}
}

func TestConjunction(t *testing.T) {
	// y = x0 > 3 && x1 < 7, dense grid.
	var exs []Example
	for a := 0; a < 10; a++ {
		for b := 0; b < 10; b++ {
			exs = append(exs, Example{X: []int{a, b}, Y: a > 3 && b < 7})
		}
	}
	tr, err := Train(exs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := tr.Accuracy(exs); acc != 1 {
		t.Fatalf("training accuracy = %v, want 1", acc)
	}
}

func TestXorNeedsDepth(t *testing.T) {
	// Unbalanced XOR y = (x0 < 5) != (x1 < 3): the first split has positive
	// marginal gain (unlike balanced XOR, which defeats any greedy
	// gain-based learner) and each side reduces to a pure threshold, so a
	// depth-2 tree learns it exactly.
	var exs []Example
	for a := 0; a < 10; a++ {
		for b := 0; b < 10; b++ {
			exs = append(exs, Example{X: []int{a, b}, Y: (a < 5) != (b < 3)})
		}
	}
	tr, err := Train(exs, Config{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if acc := tr.Accuracy(exs); acc != 1 {
		t.Fatalf("unbalanced XOR accuracy = %v, want 1", acc)
	}
	if tr.Depth() < 2 {
		t.Fatalf("XOR learned with depth %d < 2?", tr.Depth())
	}
}

func TestBalancedXorIsGreedyBlindSpot(t *testing.T) {
	// Balanced XOR has zero marginal gain on every single split, so the
	// greedy learner (like classical ID3/C4.5) refuses to split at all.
	// This documents the known limitation.
	var exs []Example
	for a := 0; a < 10; a++ {
		for b := 0; b < 10; b++ {
			exs = append(exs, Example{X: []int{a, b}, Y: (a < 5) != (b < 5)})
		}
	}
	tr, err := Train(exs, Config{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Root.Leaf {
		t.Fatal("expected greedy learner to refuse splitting balanced XOR")
	}
}

func TestMissingFeaturesReadZero(t *testing.T) {
	exs := []Example{
		{X: []int{0, 9}, Y: true},
		{X: []int{0, 0}, Y: false},
		{X: []int{0}, Y: false}, // x[1] missing -> 0
		{X: []int{0, 8}, Y: true},
	}
	tr, err := Train(exs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Predict([]int{0}) != false {
		t.Fatal("short vector should read missing feature as 0")
	}
	if tr.Predict([]int{0, 9}) != true {
		t.Fatal("full vector misclassified")
	}
}

func TestMinLeafPreventsSplit(t *testing.T) {
	exs := []Example{
		{X: []int{1}, Y: false},
		{X: []int{9}, Y: true},
	}
	tr, err := Train(exs, Config{MinLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Root.Leaf {
		t.Fatal("MinLeaf=2 with 2 examples must not split")
	}
}

func TestMaxDepthRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var exs []Example
	for i := 0; i < 300; i++ {
		x := []int{rng.Intn(100), rng.Intn(100), rng.Intn(100)}
		exs = append(exs, Example{X: x, Y: rng.Intn(2) == 0}) // random labels
	}
	for _, d := range []int{1, 2, 3} {
		tr, err := Train(exs, Config{MaxDepth: d})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Depth() > d {
			t.Fatalf("Depth = %d exceeds MaxDepth %d", tr.Depth(), d)
		}
	}
}

func TestRulesCoverPredictions(t *testing.T) {
	// Property: Predict(x) is true iff some extracted rule matches x.
	rng := rand.New(rand.NewSource(2))
	var exs []Example
	for i := 0; i < 200; i++ {
		x := []int{rng.Intn(10), rng.Intn(10)}
		exs = append(exs, Example{X: x, Y: x[0]+x[1] >= 10})
	}
	tr, err := Train(exs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	matches := func(r Rule, x []int) bool {
		for _, term := range r.Terms {
			var f, v int
			var op string
			if _, err := sscanTerm(term, &f, &op, &v); err != nil {
				t.Fatalf("bad term %q", term)
			}
			fv := 0
			if f < len(x) {
				fv = x[f]
			}
			if op == "<" && !(fv < v) {
				return false
			}
			if op == ">=" && !(fv >= v) {
				return false
			}
		}
		return true
	}
	f := func(a, b uint8) bool {
		x := []int{int(a % 10), int(b % 10)}
		anyRule := false
		for _, r := range tr.Rules() {
			if matches(r, x) {
				anyRule = true
				break
			}
		}
		return anyRule == tr.Predict(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// sscanTerm parses "o[F] OP V".
func sscanTerm(s string, f *int, op *string, v *int) (int, error) {
	s = strings.TrimPrefix(s, "o[")
	i := strings.Index(s, "]")
	if i < 0 {
		return 0, errors.New("no ]")
	}
	if _, err := parseInt(s[:i], f); err != nil {
		return 0, err
	}
	rest := strings.TrimSpace(s[i+1:])
	parts := strings.SplitN(rest, " ", 2)
	if len(parts) != 2 {
		return 0, errors.New("no op")
	}
	*op = parts[0]
	if _, err := parseInt(strings.TrimSpace(parts[1]), v); err != nil {
		return 0, err
	}
	return 3, nil
}

func parseInt(s string, out *int) (int, error) {
	n := 0
	neg := false
	for i, r := range s {
		if i == 0 && r == '-' {
			neg = true
			continue
		}
		if r < '0' || r > '9' {
			return 0, errors.New("not a digit")
		}
		n = n*10 + int(r-'0')
	}
	if neg {
		n = -n
	}
	*out = n
	return 1, nil
}

func TestStringRendering(t *testing.T) {
	var exs []Example
	for v := 0; v < 10; v++ {
		exs = append(exs, Example{X: []int{v}, Y: v >= 5})
	}
	tr, err := Train(exs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := tr.String()
	for _, want := range []string{"if o[0] < 5:", "leaf class=false", "leaf class=true"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestAccuracyEmpty(t *testing.T) {
	tr, err := Train([]Example{{X: []int{1}, Y: true}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Accuracy(nil) != 1 {
		t.Fatal("Accuracy(nil) should be 1")
	}
}

func TestGeneralizationOnHoldout(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	gen := func(n int) []Example {
		exs := make([]Example, n)
		for i := range exs {
			x := []int{rng.Intn(20), rng.Intn(20), rng.Intn(20)}
			exs[i] = Example{X: x, Y: x[0] < 12 && x[2] >= 4}
		}
		return exs
	}
	train, test := gen(600), gen(300)
	tr, err := Train(train, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := tr.Accuracy(test); acc < 0.93 {
		t.Fatalf("holdout accuracy = %v, want >= 0.93", acc)
	}
}

func TestFeatureImportance(t *testing.T) {
	// y depends only on x0; x1 and x2 are noise features.
	rng := rand.New(rand.NewSource(9))
	var exs []Example
	for i := 0; i < 500; i++ {
		x := []int{rng.Intn(10), rng.Intn(10), rng.Intn(10)}
		exs = append(exs, Example{X: x, Y: x[0] >= 5})
	}
	tr, err := Train(exs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	imp := tr.FeatureImportance()
	if len(imp) != 3 {
		t.Fatalf("importance length = %d, want 3", len(imp))
	}
	sum := imp[0] + imp[1] + imp[2]
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("importances sum to %v, want 1", sum)
	}
	if imp[0] < 0.9 {
		t.Fatalf("x0 importance = %v, want dominant", imp[0])
	}
}

func TestFeatureImportanceLeafOnly(t *testing.T) {
	tr, err := Train([]Example{{X: []int{1}, Y: true}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if imp := tr.FeatureImportance(); imp != nil {
		t.Fatalf("leaf-only tree importance = %v, want nil", imp)
	}
}
