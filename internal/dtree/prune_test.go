package dtree

import (
	"math/rand"
	"testing"
)

// noisyThresholdData generates y = (x0 >= 5) with label noise, which makes
// unpruned trees overfit.
func noisyThresholdData(rng *rand.Rand, n int, noise float64) []Example {
	exs := make([]Example, n)
	for i := range exs {
		x := []int{rng.Intn(10), rng.Intn(10), rng.Intn(10)}
		y := x[0] >= 5
		if rng.Float64() < noise {
			y = !y
		}
		exs[i] = Example{X: x, Y: y}
	}
	return exs
}

func TestPruneImprovesOrKeepsValidationAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := noisyThresholdData(rng, 400, 0.15)
	val := noisyThresholdData(rng, 200, 0.15)
	test := noisyThresholdData(rng, 400, 0) // clean test labels

	tr, err := Train(train, Config{MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	beforeVal := tr.Accuracy(val)
	beforeSize := tr.Size()
	pruned := tr.Prune(val)
	if tr.Accuracy(val) < beforeVal {
		t.Fatalf("pruning reduced validation accuracy: %v -> %v", beforeVal, tr.Accuracy(val))
	}
	if tr.Size() > beforeSize {
		t.Fatalf("pruning grew the tree: %d -> %d", beforeSize, tr.Size())
	}
	if pruned == 0 && beforeSize > 3 {
		t.Fatalf("expected some pruning of an overfit tree (size %d)", beforeSize)
	}
	// The pruned tree should be close to the true concept on clean labels.
	if acc := tr.Accuracy(test); acc < 0.9 {
		t.Fatalf("pruned tree test accuracy = %v, want >= 0.9", acc)
	}
}

func TestPruneCollapsesPureNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var train, val []Example
	for i := 0; i < 300; i++ {
		train = append(train, Example{X: []int{rng.Intn(10), rng.Intn(10)}, Y: rng.Intn(2) == 0})
		val = append(val, Example{X: []int{rng.Intn(10), rng.Intn(10)}, Y: rng.Intn(2) == 0})
	}
	tr, err := Train(train, Config{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	beforeSize := tr.Size()
	tr.Prune(val)
	// Pure-noise labels: pruning cannot collapse to a single leaf with
	// certainty (a subtree can beat the majority leaf on the validation
	// sample by chance), but the overfit tree must shrink substantially.
	if tr.Size()*2 > beforeSize {
		t.Fatalf("pruned pure-noise tree only shrank from %d to %d nodes", beforeSize, tr.Size())
	}
}

func TestPruneEmptyValidationNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr, err := Train(noisyThresholdData(rng, 100, 0.2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	before := tr.Size()
	if n := tr.Prune(nil); n != 0 {
		t.Fatalf("Prune(nil) pruned %d", n)
	}
	if tr.Size() != before {
		t.Fatal("Prune(nil) changed the tree")
	}
}

func TestPrunePreservesPerfectTree(t *testing.T) {
	var exs []Example
	for v := 0; v < 10; v++ {
		for r := 0; r < 5; r++ {
			exs = append(exs, Example{X: []int{v}, Y: v >= 5})
		}
	}
	tr, err := Train(exs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr.Prune(exs)
	if acc := tr.Accuracy(exs); acc != 1 {
		t.Fatalf("pruning broke a perfect tree: accuracy %v", acc)
	}
	if tr.Root.Leaf {
		t.Fatal("perfect split pruned away")
	}
}
