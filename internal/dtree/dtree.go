// Package dtree is a from-scratch decision-tree classifier in the style of
// the classical systems surveyed by Weiss & Kulikowski [WK91], which Section
// 7 of the paper prescribes for learning the Boolean edge conditions: "the
// use of a decision tree classifier will give a set of simple rules that
// classify when a given activity is taken or not."
//
// Features are integer vectors (activity output vectors o(u) ∈ N^k); labels
// are Boolean (edge taken or not). Splits are binary threshold tests
// x[i] < t chosen by information gain.
package dtree

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Example is one labeled training instance.
type Example struct {
	// X is the feature vector (an activity's output vector).
	X []int
	// Y is the class label (whether the outgoing edge was taken).
	Y bool
}

// Config controls tree induction. The zero value gets sensible defaults.
type Config struct {
	// MaxDepth bounds the tree depth; 0 means default (8).
	MaxDepth int
	// MinLeaf is the minimum number of examples in a leaf; 0 means 1.
	MinLeaf int
	// MinGain is the minimum information gain (in bits) required to split;
	// values <= 0 mean 1e-9.
	MinGain float64
}

func (c Config) withDefaults() Config {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 8
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 1
	}
	if c.MinGain <= 0 {
		c.MinGain = 1e-9
	}
	return c
}

// Node is one decision-tree node. Leaves have Leaf == true; internal nodes
// test X[Feature] < Threshold and descend Left on true, Right on false.
type Node struct {
	Leaf      bool
	Class     bool    // leaf prediction
	PosRatio  float64 // fraction of positive training examples at this node
	N         int     // training examples at this node
	Feature   int
	Threshold int
	Left      *Node // X[Feature] < Threshold
	Right     *Node
}

// Tree is a trained decision-tree classifier.
type Tree struct {
	Root     *Node
	Features int // feature-vector width seen at training
}

// ErrNoData is returned by Train when the training set is empty.
var ErrNoData = errors.New("dtree: empty training set")

// Train induces a tree from examples. Feature vectors may have differing
// lengths; missing trailing features read as zero, mirroring the Output
// convention in the conditions miner.
func Train(examples []Example, cfg Config) (*Tree, error) {
	if len(examples) == 0 {
		return nil, ErrNoData
	}
	cfg = cfg.withDefaults()
	width := 0
	for _, ex := range examples {
		if len(ex.X) > width {
			width = len(ex.X)
		}
	}
	root := build(examples, cfg, width, 0)
	return &Tree{Root: root, Features: width}, nil
}

// feature reads x[i] with the missing-reads-zero convention.
func feature(x []int, i int) int {
	if i < len(x) {
		return x[i]
	}
	return 0
}

// entropy returns the binary entropy (bits) of a p/n split.
func entropy(pos, n int) float64 {
	if n == 0 || pos == 0 || pos == n {
		return 0
	}
	p := float64(pos) / float64(n)
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

func countPos(examples []Example) int {
	pos := 0
	for _, ex := range examples {
		if ex.Y {
			pos++
		}
	}
	return pos
}

func leaf(examples []Example) *Node {
	pos := countPos(examples)
	return &Node{
		Leaf:     true,
		Class:    2*pos >= len(examples), // majority, ties predict true
		PosRatio: float64(pos) / float64(len(examples)),
		N:        len(examples),
	}
}

func build(examples []Example, cfg Config, width, depth int) *Node {
	pos := countPos(examples)
	if depth >= cfg.MaxDepth || pos == 0 || pos == len(examples) || len(examples) < 2*cfg.MinLeaf {
		return leaf(examples)
	}
	bestGain := cfg.MinGain
	bestFeat, bestThr := -1, 0
	base := entropy(pos, len(examples))
	for f := 0; f < width; f++ {
		// Candidate thresholds: midpoints between consecutive distinct
		// values (integer features: any value strictly between works; we
		// use the upper value so the test is x < t).
		vals := make([]int, 0, len(examples))
		for _, ex := range examples {
			vals = append(vals, feature(ex.X, f))
		}
		sort.Ints(vals)
		for i := 1; i < len(vals); i++ {
			if vals[i] == vals[i-1] {
				continue
			}
			t := vals[i]
			lp, ln, rp, rn := 0, 0, 0, 0
			for _, ex := range examples {
				if feature(ex.X, f) < t {
					ln++
					if ex.Y {
						lp++
					}
				} else {
					rn++
					if ex.Y {
						rp++
					}
				}
			}
			if ln < cfg.MinLeaf || rn < cfg.MinLeaf {
				continue
			}
			rem := (float64(ln)*entropy(lp, ln) + float64(rn)*entropy(rp, rn)) / float64(len(examples))
			if gain := base - rem; gain > bestGain {
				bestGain, bestFeat, bestThr = gain, f, t
			}
		}
	}
	if bestFeat < 0 {
		return leaf(examples)
	}
	var left, right []Example
	for _, ex := range examples {
		if feature(ex.X, bestFeat) < bestThr {
			left = append(left, ex)
		} else {
			right = append(right, ex)
		}
	}
	n := leaf(examples) // carries PosRatio/N for the internal node too
	n.Leaf = false
	n.Feature = bestFeat
	n.Threshold = bestThr
	n.Left = build(left, cfg, width, depth+1)
	n.Right = build(right, cfg, width, depth+1)
	return n
}

// Predict classifies a feature vector.
func (t *Tree) Predict(x []int) bool {
	n := t.Root
	for !n.Leaf {
		if feature(x, n.Feature) < n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Class
}

// Accuracy returns the fraction of examples the tree classifies correctly.
func (t *Tree) Accuracy(examples []Example) float64 {
	if len(examples) == 0 {
		return 1
	}
	ok := 0
	for _, ex := range examples {
		if t.Predict(ex.X) == ex.Y {
			ok++
		}
	}
	return float64(ok) / float64(len(examples))
}

// Size returns the number of nodes in the tree.
func (t *Tree) Size() int { return size(t.Root) }

func size(n *Node) int {
	if n == nil {
		return 0
	}
	if n.Leaf {
		return 1
	}
	return 1 + size(n.Left) + size(n.Right)
}

// Depth returns the depth of the tree (a lone leaf has depth 0).
func (t *Tree) Depth() int { return depth(t.Root) }

func depth(n *Node) int {
	if n == nil || n.Leaf {
		return 0
	}
	l, r := depth(n.Left), depth(n.Right)
	if l > r {
		return 1 + l
	}
	return 1 + r
}

// Rule is one conjunctive path from root to a positive leaf: the set of
// threshold comparisons that must all hold. Rules are the "simple rules"
// the paper wants from the classifier.
type Rule struct {
	// Terms are rendered comparisons like "o[0] >= 5".
	Terms []string
}

// String joins the rule's terms with " && "; an empty rule is "true".
func (r Rule) String() string {
	if len(r.Terms) == 0 {
		return "true"
	}
	return strings.Join(r.Terms, " && ")
}

// Rules extracts the disjunction of conjunctive rules under which the tree
// predicts true.
func (t *Tree) Rules() []Rule {
	var out []Rule
	var walk func(n *Node, terms []string)
	walk = func(n *Node, terms []string) {
		if n == nil {
			return
		}
		if n.Leaf {
			if n.Class {
				r := Rule{Terms: append([]string(nil), terms...)}
				out = append(out, r)
			}
			return
		}
		walk(n.Left, append(terms, fmt.Sprintf("o[%d] < %d", n.Feature, n.Threshold)))
		walk(n.Right, append(terms, fmt.Sprintf("o[%d] >= %d", n.Feature, n.Threshold)))
	}
	walk(t.Root, nil)
	return out
}

// String renders the tree as an indented text diagram, for CLI output.
func (t *Tree) String() string {
	var b strings.Builder
	var walk func(n *Node, indent string)
	walk = func(n *Node, indent string) {
		if n.Leaf {
			fmt.Fprintf(&b, "%sleaf class=%v (n=%d, pos=%.2f)\n", indent, n.Class, n.N, n.PosRatio)
			return
		}
		fmt.Fprintf(&b, "%sif o[%d] < %d:\n", indent, n.Feature, n.Threshold)
		walk(n.Left, indent+"  ")
		fmt.Fprintf(&b, "%selse:\n", indent)
		walk(n.Right, indent+"  ")
	}
	walk(t.Root, "")
	return b.String()
}
