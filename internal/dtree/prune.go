package dtree

// Reduced-error pruning: the classical post-pruning scheme surveyed in
// [WK91]. Given a validation set disjoint from training, every internal
// node is considered bottom-up; if replacing its subtree with a majority
// leaf does not reduce validation accuracy, the subtree is pruned. The
// result is a smaller tree that generalizes at least as well on the
// validation data — and much simpler extracted rules, which matters because
// Section 7 wants "a set of simple rules".

// Prune applies reduced-error pruning in place using the validation
// examples and returns the number of subtrees collapsed. An empty
// validation set prunes nothing.
func (t *Tree) Prune(validation []Example) int {
	if len(validation) == 0 || t.Root == nil {
		return 0
	}
	pruned := 0
	t.Root = pruneNode(t.Root, validation, &pruned)
	return pruned
}

// pruneNode returns the (possibly collapsed) node after pruning its
// children against the validation examples that reach it.
func pruneNode(n *Node, val []Example, pruned *int) *Node {
	if n.Leaf {
		return n
	}
	var left, right []Example
	for _, ex := range val {
		if feature(ex.X, n.Feature) < n.Threshold {
			left = append(left, ex)
		} else {
			right = append(right, ex)
		}
	}
	n.Left = pruneNode(n.Left, left, pruned)
	n.Right = pruneNode(n.Right, right, pruned)

	// Candidate leaf: majority class from training statistics carried on
	// the node itself.
	leafClass := n.PosRatio >= 0.5
	leafCorrect := 0
	subtreeCorrect := 0
	for _, ex := range val {
		if leafClass == ex.Y {
			leafCorrect++
		}
		if predictFrom(n, ex.X) == ex.Y {
			subtreeCorrect++
		}
	}
	if leafCorrect >= subtreeCorrect {
		*pruned += size(n) / 2 // internal nodes collapsed (approximate)
		return &Node{Leaf: true, Class: leafClass, PosRatio: n.PosRatio, N: n.N}
	}
	return n
}

// predictFrom descends from an arbitrary node.
func predictFrom(n *Node, x []int) bool {
	for !n.Leaf {
		if feature(x, n.Feature) < n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Class
}
