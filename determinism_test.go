package procmine

// Regression test for the invariant the mapiterorder pass enforces
// statically: mining the same log must serialize to byte-identical output on
// every run. Go randomizes map iteration order per map, so any serialization
// path that leaks it produces different bytes across the 20 repetitions
// below with high probability.

import (
	"strings"
	"testing"
)

// mineAndSerialize runs one full mine-and-render cycle and returns every
// textual form the CLI can emit: DOT, the ASCII layer sketch, the adjacency
// list, and the debug model text.
func mineAndSerialize(t *testing.T, log *Log) (dot, ascii, adj, model string) {
	t.Helper()
	g, err := Mine(log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dot = g.Dot("P")
	var ab strings.Builder
	if err := g.WriteAdjacency(&ab); err != nil {
		t.Fatal(err)
	}
	var lb strings.Builder
	if err := g.WriteLayers(&lb); err != nil {
		t.Fatal(err)
	}
	return dot, lb.String(), ab.String(), g.String()
}

func TestMineSerializationDeterminism(t *testing.T) {
	// The paper's running example plus extra interleavings: enough
	// parallelism that the mined graph's maps hold several keys per vertex.
	log := LogFromStrings(
		"ABCDEF", "ACBDEF", "ABCEDF", "ACBEDF",
		"ABDCEF", "ACDBEF", "ABCDEF", "ACBDEF",
	)
	dot0, ascii0, adj0, model0 := mineAndSerialize(t, log)
	if dot0 == "" || ascii0 == "" || adj0 == "" || model0 == "" {
		t.Fatal("serialization produced empty output")
	}
	for i := 1; i < 20; i++ {
		dot, ascii, adj, model := mineAndSerialize(t, log)
		if dot != dot0 {
			t.Fatalf("run %d: DOT output differs:\n--- run 0\n%s\n--- run %d\n%s", i, dot0, i, dot)
		}
		if ascii != ascii0 {
			t.Fatalf("run %d: layer output differs:\n--- run 0\n%s\n--- run %d\n%s", i, ascii0, i, ascii)
		}
		if adj != adj0 {
			t.Fatalf("run %d: adjacency output differs:\n--- run 0\n%s\n--- run %d\n%s", i, adj0, i, adj)
		}
		if model != model0 {
			t.Fatalf("run %d: model text differs:\n--- run 0\n%s\n--- run %d\n%s", i, model0, i, model)
		}
	}
}

// TestCyclicRenderDeterminism covers the SCC-collapsing path of the layer
// renderer, which buckets vertices through maps of its own: a mined cyclic
// model must also render identically every time.
func TestCyclicRenderDeterminism(t *testing.T) {
	log := LogFromStrings(
		"ABCBCD", "ABCD", "ABCBCBCD", "ABCD", "ABCBCD",
	)
	g, err := MineCyclic(log, Options{})
	if err != nil {
		t.Fatal(err)
	}
	render := func() string {
		var b strings.Builder
		if err := g.WriteLayers(&b); err != nil {
			t.Fatal(err)
		}
		return b.String() + g.Dot("C")
	}
	first := render()
	if !strings.Contains(first, "{") {
		t.Fatalf("expected a collapsed SCC pseudo-vertex in cyclic render:\n%s", first)
	}
	for i := 1; i < 20; i++ {
		if got := render(); got != first {
			t.Fatalf("run %d: cyclic render differs:\n--- run 0\n%s\n--- run %d\n%s", i, first, i, got)
		}
	}
}
