// Insurance-claim scenario: the workflow use case that motivates the paper.
// An insurer runs an unstructured claims process; the steps are known but
// the control flow is tribal knowledge. We simulate the "real" process with
// the Flowmark-style engine, treat its audit trail as the historical log,
// and show that mining reconstructs the process graph and the business
// rules on its branches — the workflow-system introduction path the paper's
// Section 1 describes.
package main

import (
	"fmt"
	"log"
	"os"

	"procmine"
)

// claimsProcess is the ground truth the insurer's staff carries in their
// heads: registration, parallel coverage and fraud checks, an optional
// expert assessment for large claims, then settle or reject.
func claimsProcess() *procmine.Process {
	g := procmine.NewGraph()
	for _, e := range [][2]string{
		{"Register", "Check_Coverage"},
		{"Register", "Fraud_Screen"},
		{"Check_Coverage", "Assess_Damage"},
		{"Check_Coverage", "Decide"},
		{"Fraud_Screen", "Decide"},
		{"Assess_Damage", "Decide"},
		{"Decide", "Settle"},
		{"Decide", "Reject"},
		{"Settle", "Close"},
		{"Reject", "Close"},
	} {
		g.AddEdge(e[0], e[1])
	}
	return &procmine.Process{
		Name:  "Claims",
		Graph: g,
		Start: "Register",
		End:   "Close",
		Outputs: map[string]procmine.OutputFunc{
			// o[0] = claim amount class, o[1] = risk score.
			"Register":       procmine.UniformOutput(2, 10),
			"Check_Coverage": procmine.UniformOutput(2, 10),
			"Fraud_Screen":   procmine.UniformOutput(2, 10),
			"Assess_Damage":  procmine.UniformOutput(2, 10),
			"Decide":         procmine.UniformOutput(2, 10),
			"Settle":         procmine.UniformOutput(2, 10),
			"Reject":         procmine.UniformOutput(2, 10),
			"Close":          procmine.UniformOutput(2, 10),
		},
		Conditions: map[procmine.Edge]procmine.Condition{
			// Large claims (amount class >= 6) get an expert assessment.
			{From: "Check_Coverage", To: "Assess_Damage"}: procmine.Threshold{Index: 0, Op: procmine.GE, Value: 6},
			// Approve when the decision risk score is low, reject otherwise.
			{From: "Decide", To: "Settle"}: procmine.Threshold{Index: 1, Op: procmine.LT, Value: 7},
			{From: "Decide", To: "Reject"}: procmine.Threshold{Index: 1, Op: procmine.GE, Value: 7},
		},
	}
}

func main() {
	truth := claimsProcess()

	// Step 1: the historical record — 500 claims processed by hand.
	wl, err := procmine.SimulateLog(truth, 500, 20260704)
	if err != nil {
		log.Fatal(err)
	}
	st := wl.ComputeStats()
	fmt.Printf("historical log: %d claims, %d events, executions of %d-%d steps\n",
		st.Executions, st.Events, st.MinLen, st.MaxLen)

	// Step 2: mine the process model from the log alone.
	mined, err := procmine.Mine(wl, procmine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmined claims process:")
	if err := mined.WriteAdjacency(os.Stdout); err != nil {
		log.Fatal(err)
	}
	d := procmine.Compare(truth.Graph, mined)
	fmt.Printf("\nrecovered the true process exactly: %v\n", d.Equal())

	// Step 3: learn the business rules on the branches.
	learned := procmine.LearnConditions(wl, mined, procmine.TreeConfig{MinLeaf: 8})
	fmt.Println("\nlearned branch conditions:")
	for _, e := range mined.Edges() {
		le := learned[e]
		if le.Positive == le.Examples {
			continue // unconditional edge
		}
		fmt.Printf("  f(%s) = %s   [train accuracy %.2f]\n", e, le.Condition, le.TrainAccuracy)
	}

	// Step 4: validate a new claim trace against the mined model.
	good := procmine.FromSequence("new-claim-1",
		"Register", "Fraud_Screen", "Check_Coverage", "Decide", "Settle", "Close")
	if err := procmine.Consistent(mined, "Register", "Close", good); err != nil {
		fmt.Println("\nnew claim trace rejected:", err)
	} else {
		fmt.Println("\nnew claim trace conforms to the mined model")
	}
	bad := procmine.FromSequence("rogue-claim",
		"Register", "Settle", "Decide", "Close")
	if err := procmine.Consistent(mined, "Register", "Close", bad); err != nil {
		fmt.Println("rogue claim trace correctly rejected:", err)
	}
}
