// Quickstart: mine a process model graph from a handful of recorded
// executions, using the paper's running examples, and print it.
package main

import (
	"fmt"
	"log"
	"os"

	"procmine"
)

func main() {
	// The log of Example 6: three executions of a five-activity process.
	// Each string lists the activities of one execution in the order they
	// ran (the paper's compact notation).
	wl := procmine.LogFromStrings("ABCDE", "ACDBE", "ACBDE")

	// Every activity appears in every execution, so Algorithm 1 applies and
	// yields the provably unique minimal conformal graph.
	g, err := procmine.MineExact(wl, procmine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Minimal conformal graph for {ABCDE, ACDBE, ACBDE}:")
	if err := g.WriteAdjacency(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The general algorithm handles executions that skip activities.
	partial := procmine.LogFromStrings("ABCF", "ACDF", "ADEF", "AECF")
	g2, err := procmine.Mine(partial, procmine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nGraph for the partial-execution log of Example 7:")
	if err := g2.WriteAdjacency(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Verify conformality (Definition 7) and render DOT for Graphviz.
	rep := procmine.Check(g2, partial, "A", "F", procmine.Options{})
	fmt.Println("\nConformance:", rep.Summary())
	fmt.Println("\nGraphviz rendering:")
	fmt.Print(g2.Dot("Example7"))
}
