// Noisy-log scenario (Section 6): real audit trails contain out-of-order
// reports. This example corrupts a clean log of a sequential deployment
// process, shows that naive mining shatters the chain, and recovers it with
// the paper's threshold rule ε → T.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"procmine"
)

func main() {
	// A strictly sequential deployment pipeline.
	steps := []string{"Checkout", "Build", "Unit_Test", "Package", "Deploy", "Smoke_Test"}
	truth := procmine.NewGraph()
	for i := 0; i+1 < len(steps); i++ {
		truth.AddEdge(steps[i], steps[i+1])
	}

	const (
		m       = 300
		epsilon = 0.06 // 6% of adjacent pairs reported out of order
	)
	clean := &procmine.Log{}
	for i := 0; i < m; i++ {
		clean.Executions = append(clean.Executions,
			procmine.FromSequence(fmt.Sprintf("run%03d", i), steps...))
	}
	corruptor := procmine.NewCorruptor(rand.New(rand.NewSource(7)))
	noisy := corruptor.SwapAdjacent(clean, epsilon)

	// Naive mining: the swapped orders make sequential steps look
	// independent, so chain edges vanish.
	naive, err := procmine.Mine(noisy, procmine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive mining of the noisy log (%d edges, want %d):\n", naive.NumEdges(), truth.NumEdges())
	if err := naive.WriteAdjacency(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Thresholded mining: choose T from the error rate with the paper's
	// balance rule, then ignore pairwise orders with fewer observations.
	T, err := procmine.NoiseThreshold(m, epsilon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSection 6 threshold for m=%d, epsilon=%v: T=%d\n", m, epsilon, T)
	robust, err := procmine.Mine(noisy, procmine.Options{MinSupport: T})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("thresholded mining of the same log:")
	if err := robust.WriteAdjacency(os.Stdout); err != nil {
		log.Fatal(err)
	}
	d := procmine.Compare(truth, robust)
	fmt.Printf("\npipeline recovered exactly despite the noise: %v\n", d.Equal())
}
