// Cyclic rework scenario: processes with loops (Section 5 / Algorithm 3).
// A document-review process sends drafts back for revision until they pass,
// so Review and Revise repeat within one execution. Algorithm 3 labels the
// repeated instances apart, mines the labeled log, and merges the instances
// back, recovering the loop.
package main

import (
	"fmt"
	"log"
	"os"

	"procmine"
)

func main() {
	// Executions of a document workflow: Draft, then one or more
	// Review/Revise rounds, then Publish. (Single letters per the paper's
	// notation: D=Draft, R=Review, V=Revise, P=Publish, E=End.)
	wl := procmine.LogFromStrings(
		"DRPE",     // passed first review
		"DRVRPE",   // one revision round
		"DRVRVRPE", // two revision rounds
		"DRVRPE",
		"DRPE",
	)

	g, err := procmine.MineCyclic(wl, procmine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mined document workflow (with rework loop):")
	if err := g.WriteAdjacency(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncontains the Review->Revise->Review loop: %v\n",
		g.HasEdge("R", "V") && g.HasEdge("V", "R"))
	fmt.Printf("graph is cyclic (as the process demands): %v\n", !g.IsDAG())

	// Mine also the paper's Example 8 log and show the B<->C cycle.
	ex8 := procmine.LogFromStrings("ABDCE", "ABDCBCE", "ABCBDCE", "ADE")
	g8, err := procmine.Mine(ex8, procmine.Options{}) // auto-detects repeats
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nExample 8 of the paper (Figure 6):")
	if err := g8.WriteAdjacency(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDOT for Graphviz:")
	fmt.Print(g8.Dot("Example8"))
}
