// Model-evolution scenario (Section 1 of the paper: mining can "allow the
// evolution of the current process model into future versions of the model
// by incorporating feedback from successful process executions"). An
// organization's process changes over time — a new compliance step is
// inserted — and the incremental miner absorbs completed executions as they
// arrive, showing the model before and after the change without ever
// rescanning history.
package main

import (
	"fmt"
	"log"
	"os"

	"procmine"
)

func main() {
	im := procmine.NewIncrementalMiner()

	// Era 1: the original order-handling process. Receive, then Pick and
	// Invoice in parallel, then Ship.
	era1 := [][]string{
		{"Receive", "Pick", "Invoice", "Ship"},
		{"Receive", "Invoice", "Pick", "Ship"},
		{"Receive", "Pick", "Invoice", "Ship"},
		{"Receive", "Invoice", "Pick", "Ship"},
	}
	for i, seq := range era1 {
		exec := procmine.FromSequence(fmt.Sprintf("order-%03d", i), seq...)
		if err := im.Add(exec); err != nil {
			log.Fatal(err)
		}
	}
	g1, err := im.Mine(procmine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model after %d executions (era 1):\n", im.Executions())
	if err := g1.WriteAdjacency(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Era 2: compliance requires a Sanctions_Check between Receive and
	// Ship; it runs in parallel with the rest. New executions flow in.
	era2 := [][]string{
		{"Receive", "Sanctions_Check", "Pick", "Invoice", "Ship"},
		{"Receive", "Pick", "Sanctions_Check", "Invoice", "Ship"},
		{"Receive", "Invoice", "Sanctions_Check", "Pick", "Ship"},
		{"Receive", "Sanctions_Check", "Invoice", "Pick", "Ship"},
		{"Receive", "Pick", "Invoice", "Sanctions_Check", "Ship"},
	}
	for i, seq := range era2 {
		exec := procmine.FromSequence(fmt.Sprintf("order-%03d", 100+i), seq...)
		if err := im.Add(exec); err != nil {
			log.Fatal(err)
		}
	}
	g2, err := im.Mine(procmine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmodel after %d executions (era 2, Sanctions_Check absorbed):\n", im.Executions())
	if err := g2.WriteAdjacency(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// What changed between the versions?
	d := procmine.Compare(g1, g2)
	fmt.Println("\nevolution diff (era1 -> era2):")
	for _, v := range d.ExtraVertices {
		fmt.Printf("  new activity: %s\n", v)
	}
	for _, e := range d.ExtraEdges {
		fmt.Printf("  new edge: %v\n", e)
	}
	for _, e := range d.MissingEdges {
		fmt.Printf("  removed edge: %v\n", e)
	}

	// The evolved model still admits the old executions (the new step is
	// optional in the graph since era-1 executions lack it).
	old := procmine.FromSequence("legacy-order", "Receive", "Pick", "Invoice", "Ship")
	if err := procmine.Consistent(g2, "Receive", "Ship", old); err != nil {
		fmt.Println("\nlegacy execution rejected by evolved model:", err)
	} else {
		fmt.Println("\nlegacy executions remain consistent with the evolved model")
	}
}
