// Live-monitoring scenario: the operational loop that the paper's
// introduction motivates — mine a model from history, watch new executions
// against it, and re-mine when the process drifts. This example streams an
// audit trail event by event (as a live installation would deliver it),
// groups events into completed executions on the fly, keeps an incremental
// miner warm, and uses a drift detector to decide when the model is stale.
package main

import (
	"fmt"
	"log"

	"procmine"

	"procmine/internal/conformance"
	"procmine/internal/wlog"
)

func main() {
	// The historical era: a fulfillment process without customs handling.
	era1 := []string{"RPIS", "RIPS", "RPIS", "RIPS", "RPIS", "RIPS"}
	// The new era: regulation adds a customs check C between I/P and S.
	era2 := []string{"RPICS", "RIPCS", "RICPS", "RPCIS", "RPICS", "RIPCS", "RICPS", "RPICS"}
	legend := map[rune]string{'R': "Receive", 'P': "Pick", 'I': "Invoice", 'C': "Customs", 'S': "Ship"}
	_ = legend

	miner := procmine.NewIncrementalMiner()

	// Bootstrap: mine the model from era-1 history arriving as a stream.
	stream := wlog.NewExecutionStream(func(e procmine.Execution) error {
		return miner.Add(e)
	})
	for i, seq := range era1 {
		for _, ev := range procmine.FromSequence(fmt.Sprintf("h%02d", i), split(seq)...).Events() {
			if err := stream.Push(ev); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := stream.Close(); err != nil {
		log.Fatal(err)
	}
	model, err := miner.Mine(procmine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrapped model from %d historical executions:\n", miner.Executions())
	if err := model.WriteLayers(printer{}); err != nil {
		log.Fatal(err)
	}

	// Operations: watch new executions; alarm when fitness drops.
	detector, err := conformance.NewDriftDetector(model, "R", "S", 6, 0.7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmonitoring live executions (window 6, threshold 0.70):")
	for i, seq := range era2 {
		exec := procmine.FromSequence(fmt.Sprintf("live%02d", i), split(seq)...)
		if err := miner.Add(exec); err != nil {
			log.Fatal(err)
		}
		fitness, drifted := detector.Observe(exec)
		fmt.Printf("  %-6s %-8s fitness %.2f", exec.ID, seq, fitness)
		if !drifted {
			fmt.Println()
			continue
		}
		fmt.Println("  << DRIFT: re-mining")
		model, err = miner.Mine(procmine.Options{})
		if err != nil {
			log.Fatal(err)
		}
		detector.Reset(model)
	}

	fmt.Println("\nmodel after absorbing the drift:")
	if err := model.WriteLayers(printer{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCustoms step integrated: %v\n", model.HasVertex("C"))
}

func split(s string) []string {
	out := make([]string, 0, len(s))
	for _, r := range s {
		out = append(out, string(r))
	}
	return out
}

// printer adapts fmt printing to io.Writer for the layer renderer.
type printer struct{}

func (printer) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}
