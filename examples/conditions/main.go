// Conditions-mining scenario (Section 7): beyond the control-flow graph,
// recover the Boolean functions on its edges from logged activity outputs.
// The paper could not run this on its Flowmark installation (outputs were
// not logged); our engine logs them, so the full Problem 2 pipeline runs:
// simulate -> mine graph -> extract per-edge training sets -> train decision
// trees -> read rules back.
package main

import (
	"fmt"
	"log"

	"procmine"
)

func main() {
	// The StressSleep replica has ten conditional edges with known ground
	// truth (thresholds on output components).
	p, err := procmine.FlowmarkProcess("StressSleep")
	if err != nil {
		log.Fatal(err)
	}
	train, err := procmine.SimulateLog(p, 400, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Mine the control flow first: conditions are learned per mined edge.
	g, err := procmine.Mine(train, procmine.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined %s: %d activities, %d edges (matches definition: %v)\n",
		p.Name, g.NumVertices(), g.NumEdges(), procmine.Compare(p.Graph, g).Equal())

	learned := procmine.LearnConditions(train, g, procmine.TreeConfig{MinLeaf: 8})
	fmt.Println("\nlearned edge conditions (ground truth in brackets):")
	for _, e := range g.Edges() {
		le := learned[e]
		truthStr := "true"
		if c, ok := p.Conditions[e]; ok {
			truthStr = c.String()
		}
		fmt.Printf("  %-22s f = %-22s [truth: %s]\n", e.String(), le.Condition.String(), truthStr)
	}

	// Score the learned conditions on a holdout log by replaying decisions.
	holdout, err := procmine.SimulateLog(p, 200, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nholdout evaluation:")
	for _, e := range g.Edges() {
		le := learned[e]
		acc := holdoutAccuracy(holdout, e, le)
		fmt.Printf("  %-22s accuracy %.3f\n", e.String(), acc)
	}
}

// holdoutAccuracy replays the learned condition against fresh executions:
// predict from the source's output whether the target runs, compare with
// what actually happened.
func holdoutAccuracy(l *procmine.Log, e procmine.Edge, le *procmine.LearnedCondition) float64 {
	total, ok := 0, 0
	for _, exec := range l.Executions {
		var out procmine.Output
		seenFrom, seenTo := false, false
		for _, s := range exec.Steps {
			if !seenFrom && s.Activity == e.From {
				seenFrom, out = true, s.Output
			}
			if s.Activity == e.To {
				seenTo = true
			}
		}
		if !seenFrom {
			continue
		}
		total++
		if le.Condition.Eval(out) == seenTo {
			ok++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(ok) / float64(total)
}
