package procmine

import (
	"math/rand"

	"procmine/internal/flowmark"
	"procmine/internal/model"
	"procmine/internal/noise"
	"procmine/internal/synth"
)

// This file re-exports the simulation substrates so the examples and
// downstream users can generate workloads through the public API: the
// Flowmark-style engine for processes with conditions, the Section 8.1
// random-DAG simulator, and the Section 6 log corruptor.

type (
	// Engine executes process instances in virtual time with a pool of
	// simulated agents, logging Flowmark-style executions.
	Engine = flowmark.Engine
	// Simulator is the Section 8.1 list-based random execution generator
	// for plain DAGs (no conditions).
	Simulator = synth.Simulator
	// Corruptor injects Section 6 noise into logs, plus structural faults
	// (dropped ENDs, duplicated events, truncated trails, garbage lines)
	// into raw event streams for chaos-testing ingestion.
	Corruptor = noise.Corruptor
	// StructuralFaults counts the faults a structural corruption injected,
	// for exact comparison against an IngestReport.
	StructuralFaults = noise.StructuralFaults
	// OutputFunc produces an activity's output vector.
	OutputFunc = model.OutputFunc
	// Threshold is a single-comparison condition o[i] OP value.
	Threshold = model.Threshold
	// And, Or, Not combine conditions; True is the unconditional edge.
	And = model.And
	// Or is the disjunction of conditions.
	Or = model.Or
	// Not negates a condition.
	Not = model.Not
	// True is the always-true condition.
	True = model.True
	// CmpOp is a comparison operator for Threshold conditions.
	CmpOp = model.CmpOp
)

// Comparison operators for Threshold conditions.
const (
	LT = model.LT
	LE = model.LE
	GT = model.GT
	GE = model.GE
	EQ = model.EQ
	NE = model.NE
)

// Simulation constructors.
var (
	// NewEngine validates a process and returns an execution engine.
	NewEngine = flowmark.NewEngine
	// NewSimulator prepares the Section 8.1 simulator for a DAG with
	// START/END endpoints (synth.StartActivity / synth.EndActivity).
	NewSimulator = synth.NewSimulator
	// RandomDAG generates a random single-source/single-sink DAG.
	RandomDAG = synth.RandomDAG
	// NewCorruptor returns a Section 6 log corruptor.
	NewCorruptor = noise.NewCorruptor
	// ConstOutput and UniformOutput build activity output functions.
	ConstOutput = model.ConstOutput
	// UniformOutput yields k independent uniform integers in [0, max).
	UniformOutput = model.UniformOutput
	// Graph10 is the Figure 7 example process graph (A..J).
	Graph10 = synth.Graph10
	// FlowmarkProcess returns one of the five Table 3 replica processes
	// by name (Upload_and_Notify, StressSleep, Pend_Block, Local_Swap,
	// UWI_Pilot).
	FlowmarkProcess = flowmark.Get
)

// SimulateLog is a convenience wrapper: it runs m instances of the process
// on a fresh engine seeded with seed and returns the resulting log.
func SimulateLog(p *Process, m int, seed int64) (*Log, error) {
	eng, err := flowmark.NewEngine(p, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return eng.GenerateLog(p.Name+"_", m, 0)
}
