package procmine

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func edgeList(g *Graph) []string {
	var out []string
	for _, e := range g.Edges() {
		out = append(out, e.String())
	}
	return out
}

func TestMineAutoSelectsDAG(t *testing.T) {
	l := LogFromStrings("ABCF", "ACDF", "ADEF", "AECF")
	g, err := Mine(l, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"A->B", "A->C", "A->D", "A->E", "B->C", "C->F", "D->F", "E->F"}
	if got := edgeList(g); !reflect.DeepEqual(got, want) {
		t.Fatalf("edges = %v, want %v", got, want)
	}
}

func TestMineAutoSelectsCyclic(t *testing.T) {
	l := LogFromStrings("ABDCE", "ABDCBCE", "ABCBDCE", "ADE")
	g, err := Mine(l, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge("B", "C") || !g.HasEdge("C", "B") {
		t.Fatalf("cyclic log should yield the B<->C cycle; edges = %v", edgeList(g))
	}
}

func TestMineExact(t *testing.T) {
	l := LogFromStrings("ABCDE", "ACDBE", "ACBDE")
	g, err := MineExact(l, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"A->B", "A->C", "B->E", "C->D", "D->E"}
	if got := edgeList(g); !reflect.DeepEqual(got, want) {
		t.Fatalf("edges = %v, want %v", got, want)
	}
	if _, err := MineExact(LogFromStrings("AB", "ABC"), Options{}); err == nil {
		t.Fatal("MineExact accepted a partial-execution log")
	}
}

func TestCheckAndConsistent(t *testing.T) {
	l := LogFromStrings("ABCE", "ACDBE", "ACDE")
	g, err := MineDAG(l, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := Check(g, l, "A", "E", Options{})
	if !rep.Conformal() {
		t.Fatalf("mined graph not conformal: %s", rep.Summary())
	}
	for _, e := range l.Executions {
		if err := Consistent(g, "A", "E", e); err != nil {
			t.Fatalf("execution %s: %v", e, err)
		}
	}
}

func TestNoiseThreshold(t *testing.T) {
	T, err := NoiseThreshold(100, 0.05)
	if err != nil || T != 19 {
		t.Fatalf("NoiseThreshold(100, 0.05) = %d, %v; want 19, nil", T, err)
	}
	if _, err := NoiseThreshold(10, 0.9); err == nil {
		t.Fatal("epsilon >= 0.5 accepted")
	}
}

func TestLogRoundTripAllFormats(t *testing.T) {
	l := LogFromStrings("ABCE", "ACDE")
	for _, format := range []LogFormat{FormatText, FormatCSV, FormatJSON, FormatXES} {
		var buf bytes.Buffer
		if err := WriteLog(&buf, l, format); err != nil {
			t.Fatalf("format %d: write: %v", format, err)
		}
		got, err := ReadLog(&buf, format)
		if err != nil {
			t.Fatalf("format %d: read: %v", format, err)
		}
		if got.Len() != l.Len() {
			t.Fatalf("format %d: %d executions, want %d", format, got.Len(), l.Len())
		}
	}
	var buf bytes.Buffer
	if err := WriteLog(&buf, l, LogFormat(99)); err == nil {
		t.Fatal("unknown format accepted by WriteLog")
	}
	if _, err := ReadLog(&buf, LogFormat(99)); err == nil {
		t.Fatal("unknown format accepted by ReadLog")
	}
}

func TestLogFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := LogFromStrings("ABC", "ACB")
	for _, name := range []string{"log.txt", "log.csv", "log.json", "log.xes"} {
		path := filepath.Join(dir, name)
		if err := WriteLogFile(path, l); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		got, err := ReadLogFile(path)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		if got.Len() != 2 {
			t.Fatalf("%s: %d executions, want 2", name, got.Len())
		}
	}
	if _, err := ReadLogFile(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("reading missing file succeeded")
	}
	if err := WriteLogFile(filepath.Join(dir, "no", "such", "dir.txt"), l); err == nil {
		t.Fatal("writing to missing directory succeeded")
	}
	if _, err := os.Stat(filepath.Join(dir, "log.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestFormatForPath(t *testing.T) {
	cases := map[string]LogFormat{
		"a.txt":      FormatText,
		"a.log":      FormatText,
		"a":          FormatText,
		"a.csv":      FormatCSV,
		"A.CSV":      FormatCSV,
		"b.json":     FormatJSON,
		"c.xes":      FormatXES,
		"C.XES":      FormatXES,
		"dir/x.jsON": FormatJSON,
	}
	for path, want := range cases {
		if got := FormatForPath(path); got != want {
			t.Errorf("FormatForPath(%q) = %d, want %d", path, got, want)
		}
	}
}

func TestSimulateAndMineEndToEnd(t *testing.T) {
	p, err := FlowmarkProcess("Pend_Block")
	if err != nil {
		t.Fatal(err)
	}
	l, err := SimulateLog(p, 150, 42)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Mine(l, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := Compare(p.Graph, g); !d.Equal() {
		t.Fatalf("Pend_Block not recovered: missing %v extra %v", d.MissingEdges, d.ExtraEdges)
	}
	// Learn the conditions back and sanity-check the optional branches.
	learned := LearnConditions(l, g, TreeConfig{MinLeaf: 5})
	pend := learned[Edge{From: "Triage", To: "Pend"}]
	if pend.Examples == 0 || pend.TrainAccuracy < 0.95 {
		t.Fatalf("Triage->Pend learned poorly: %+v", pend)
	}
}

func TestConditionAlgebraReexports(t *testing.T) {
	c := And{Threshold{Index: 0, Op: GE, Value: 5}, Not{C: Threshold{Index: 1, Op: LT, Value: 2}}}
	if !c.Eval(Output{7, 3}) {
		t.Fatal("condition algebra misevaluates")
	}
	if c.Eval(Output{7, 1}) {
		t.Fatal("Not branch misevaluates")
	}
	var _ Condition = True{}
	var _ Condition = Or{}
}

func TestGzipLogFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := LogFromStrings("ABCE", "ACDE", "ABCE")
	for _, name := range []string{"log.csv.gz", "log.txt.gz", "log.json.gz"} {
		path := filepath.Join(dir, name)
		if err := WriteLogFile(path, l); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		got, err := ReadLogFile(path)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		if got.Len() != 3 {
			t.Fatalf("%s: %d executions, want 3", name, got.Len())
		}
	}
	// The gz file must actually be gzip (starts with the magic bytes).
	raw, err := os.ReadFile(filepath.Join(dir, "log.csv.gz"))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatal("gz file is not gzip-compressed")
	}
	// Reading a non-gzip file with .gz extension errors cleanly.
	bad := filepath.Join(dir, "fake.txt.gz")
	if err := os.WriteFile(bad, []byte("p A START 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLogFile(bad); err == nil {
		t.Fatal("non-gzip .gz file accepted")
	}
}

func TestFormatForPathGz(t *testing.T) {
	cases := map[string]LogFormat{
		"a.csv.gz":  FormatCSV,
		"a.json.GZ": FormatJSON,
		"a.xes.gz":  FormatXES,
		"a.txt.gz":  FormatText,
		"a.gz":      FormatText,
	}
	for path, want := range cases {
		if got := FormatForPath(path); got != want {
			t.Errorf("FormatForPath(%q) = %d, want %d", path, got, want)
		}
	}
}
