package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// stubMeasure returns a fixed result without timing anything, so the
// sweep's control flow and report assembly run in test time. The body is
// invoked with a zero b.N, so the workload loop itself does not execute
// (mining correctness is covered by the core package's own tests).
func stubMeasure(body func(b *testing.B)) testing.BenchmarkResult {
	var b testing.B
	body(&b)
	return testing.BenchmarkResult{N: 1, T: 2 * time.Millisecond}
}

func TestRunShortSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep generates the n=100/m=10000 log; skip under -short")
	}
	rep, err := run(config{short: true}, stubMeasure)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Schema != "procmine-bench-trajectory/v1" {
		t.Fatalf("schema = %q", rep.Schema)
	}
	// 4 n-values × 2 m-values under -short.
	if len(rep.Table1Mine) != 8 {
		t.Fatalf("short sweep has %d mine cells, want 8", len(rep.Table1Mine))
	}
	for _, c := range rep.Table1Mine {
		if c.M == 10000 {
			t.Fatalf("short sweep contains an m=10000 mine cell: %+v", c)
		}
	}
	// The acceptance cell must survive -short: n=100/m=10000 scan ablation
	// at workers 2, 4, 8.
	if len(rep.FollowsScan) != 3 {
		t.Fatalf("scan ablation has %d cells, want 3", len(rep.FollowsScan))
	}
	wantWorkers := []int{2, 4, 8}
	for i, c := range rep.FollowsScan {
		if c.N != 100 || c.M != 10000 || c.Workers != wantWorkers[i] {
			t.Fatalf("scan cell %d = %+v, want n=100 m=10000 workers=%d", i, c, wantWorkers[i])
		}
		// m=10000 executions dwarf every requested worker count, so no
		// clamping applies and each row records a genuinely sharded run.
		if c.WorkersUsed != c.Workers {
			t.Fatalf("scan cell %d: workers_used = %d, want %d", i, c.WorkersUsed, c.Workers)
		}
	}
}

// TestGateSpeedup pins the regression gate's decision table: only sharded
// rows on multi-core machines can fail it.
func TestGateSpeedup(t *testing.T) {
	cell := func(used int, speedup float64) scanCell {
		return scanCell{N: 100, M: 10000, Workers: 4, WorkersUsed: used, Speedup: speedup}
	}
	cases := []struct {
		name     string
		numCPU   int
		cells    []scanCell
		wantFail bool
	}{
		{"single_cpu_vacuous", 1, []scanCell{cell(4, 0.5)}, false},
		{"multi_cpu_regression", 4, []scanCell{cell(4, 0.8)}, true},
		{"multi_cpu_healthy", 4, []scanCell{cell(2, 1.4), cell(4, 2.1)}, false},
		{"degenerate_row_ignored", 4, []scanCell{cell(1, 0.5)}, false},
		{"mixed_rows_fail_on_sharded", 4, []scanCell{cell(1, 0.5), cell(4, 0.9)}, true},
		{"exactly_one_passes", 4, []scanCell{cell(4, 1.0)}, false},
		{"no_scan_cells", 4, nil, false},
	}
	for _, tc := range cases {
		rep := &report{NumCPU: tc.numCPU, FollowsScan: tc.cells}
		err := gateSpeedup(rep)
		if tc.wantFail && err == nil {
			t.Errorf("%s: gate passed, want failure", tc.name)
		}
		if !tc.wantFail && err != nil {
			t.Errorf("%s: gate failed: %v", tc.name, err)
		}
	}
}

// TestCheckMode round-trips the gate through the CLI: -check loads an
// existing artifact and applies gateSpeedup without measuring anything.
func TestCheckMode(t *testing.T) {
	write := func(t *testing.T, rep *report) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), "BENCH_mine.json")
		if err := writeReport(path, rep); err != nil {
			t.Fatalf("writeReport: %v", err)
		}
		return path
	}
	good := &report{
		Schema: "procmine-bench-trajectory/v1", NumCPU: 4,
		FollowsScan: []scanCell{{N: 100, M: 10000, Workers: 4, WorkersUsed: 4, Speedup: 1.7}},
	}
	if err := cli([]string{"-check", write(t, good)}); err != nil {
		t.Errorf("check of healthy artifact failed: %v", err)
	}
	bad := &report{
		Schema: "procmine-bench-trajectory/v1", NumCPU: 4,
		FollowsScan: []scanCell{{N: 100, M: 10000, Workers: 4, WorkersUsed: 4, Speedup: 0.6}},
	}
	if err := cli([]string{"-check", write(t, bad)}); err == nil {
		t.Error("check of regressed artifact passed, want failure")
	}
	wrongSchema := &report{Schema: "something-else/v9", NumCPU: 4}
	if err := cli([]string{"-check", write(t, wrongSchema)}); err == nil {
		t.Error("check of wrong-schema artifact passed, want failure")
	}
	if err := cli([]string{"-check", filepath.Join(t.TempDir(), "missing.json")}); err == nil {
		t.Error("check of missing artifact passed, want failure")
	}
}

func TestWriteReportRoundTrip(t *testing.T) {
	rep := &report{
		Schema:     "procmine-bench-trajectory/v1",
		GoVersion:  "go-test",
		GOMAXPROCS: 4,
		NumCPU:     4,
		Short:      true,
		Table1Mine: []mineCell{{N: 10, M: 100, NsPerOp: 123}},
		FollowsScan: []scanCell{{
			N: 100, M: 10000, Workers: 4, WorkersUsed: 4,
			SequentialNs: 200, ParallelNs: 100, Speedup: 2,
		}},
	}
	path := filepath.Join(t.TempDir(), "BENCH_mine.json")
	if err := writeReport(path, rep); err != nil {
		t.Fatalf("writeReport: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if back.Schema != rep.Schema || len(back.Table1Mine) != 1 || len(back.FollowsScan) != 1 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	if back.FollowsScan[0].Speedup != 2 || back.FollowsScan[0].WorkersUsed != 4 {
		t.Fatalf("speedup or workers_used lost in round trip: %+v", back.FollowsScan[0])
	}
}
