// Command benchreport regenerates the repository's bench trajectory: it runs
// the Table 1 mining sweep (n ∈ {10, 25, 50, 100} × m ∈ {100, 1000, 10000})
// and the parallel follows-scan ablation on the largest workload, and writes
// the measurements to a JSON artifact (BENCH_mine.json) so successive
// commits can be compared machine-to-machine with full context (Go version,
// GOMAXPROCS, CPU count) attached.
//
// Usage:
//
//	benchreport [-short] [-out BENCH_mine.json]
//	benchreport -check BENCH_mine.json
//
// -short skips the m=10000 mining cells (the paper's largest workloads) but
// keeps the n=100/m=10000 scan ablation, which is the acceptance cell for
// the sharded scan. CI runs the short sweep on every push and uploads the
// artifact.
//
// The speedup gate guards the trajectory against the parallel-scan
// regression recurring: on a multi-core machine (num_cpu > 1), every
// ablation row that actually ran sharded (workers_used > 1) must beat the
// sequential scan (speedup >= 1.0), or the command exits non-zero — after
// writing the artifact, so the failing measurements are preserved for
// inspection. On a single-CPU machine the gate is vacuous: a shard per
// core cannot beat one core pretending to be many. -check applies the same
// gate to an existing artifact without re-measuring, which is how CI's
// multi-core bench job re-asserts the gate as a separate step.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"procmine/internal/core"
	"procmine/internal/synth"
	"procmine/internal/wlog"
)

// mineCell is one Table 1 measurement: mining an m-execution log of an
// n-activity process with Algorithm 2.
type mineCell struct {
	N           int     `json:"n"`
	M           int     `json:"m"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// scanCell is one follows-scan ablation measurement: the sequential step-2
// scan against the sharded scan at a forced worker count on the same log.
// WorkersUsed is the worker count the sharded scan actually ran with after
// clamping (see core.ScanWorkersUsed); a row with WorkersUsed == 1 fell
// back to the sequential kernel, so its speedup carries no parallel signal
// and the gate ignores it.
type scanCell struct {
	N            int     `json:"n"`
	M            int     `json:"m"`
	Workers      int     `json:"workers"`
	WorkersUsed  int     `json:"workers_used"`
	SequentialNs float64 `json:"sequential_ns_per_op"`
	ParallelNs   float64 `json:"parallel_ns_per_op"`
	Speedup      float64 `json:"speedup"`
}

// report is the BENCH_mine.json schema.
type report struct {
	Schema      string     `json:"schema"`
	GoVersion   string     `json:"go_version"`
	GOMAXPROCS  int        `json:"gomaxprocs"`
	NumCPU      int        `json:"num_cpu"`
	Short       bool       `json:"short"`
	Table1Mine  []mineCell `json:"table1_mine"`
	FollowsScan []scanCell `json:"follows_scan"`
}

// config parameterizes a run.
type config struct {
	short bool
}

// measureFunc runs one benchmark body; tests stub it to keep the command's
// control flow testable without paying for real measurements.
type measureFunc func(body func(b *testing.B)) testing.BenchmarkResult

// syntheticLog builds one Table 1 workload exactly like bench_test.go does:
// a random n-vertex DAG at the paper's edge density and m simulated
// executions, seeded deterministically from (n, m).
func syntheticLog(n, m int) (*wlog.Log, error) {
	rng := rand.New(rand.NewSource(int64(n)*100003 + int64(m)))
	g := synth.RandomDAG(rng, n, synth.PaperEdgeProb(n))
	sim, err := synth.NewSimulator(g, rng)
	if err != nil {
		return nil, fmt.Errorf("benchreport: building simulator (n=%d): %w", n, err)
	}
	return sim.GenerateLog("b_", m), nil
}

// run executes the sweep and assembles the report.
func run(cfg config, measure measureFunc) (*report, error) {
	rep := &report{
		Schema:     "procmine-bench-trajectory/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Short:      cfg.short,
	}

	ms := []int{100, 1000, 10000}
	if cfg.short {
		ms = []int{100, 1000}
	}
	for _, n := range []int{10, 25, 50, 100} {
		for _, m := range ms {
			l, err := syntheticLog(n, m)
			if err != nil {
				return nil, err
			}
			var mineErr error
			res := measure(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.MineGeneralDAG(l, core.Options{}); err != nil {
						mineErr = err
						b.Fatal(err)
					}
				}
			})
			if mineErr != nil {
				return nil, fmt.Errorf("benchreport: mining n=%d m=%d: %w", n, m, mineErr)
			}
			rep.Table1Mine = append(rep.Table1Mine, mineCell{
				N: n, M: m,
				NsPerOp:     float64(res.NsPerOp()),
				BytesPerOp:  res.AllocedBytesPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
			})
		}
	}

	// The scan ablation always runs on the acceptance cell (n=100, m=10000),
	// even under -short: it measures only the step-2 scan, not a full mine.
	const scanN, scanM = 100, 10000
	l, err := syntheticLog(scanN, scanM)
	if err != nil {
		return nil, err
	}
	seq := measure(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = core.FollowsCountsSequential(l)
		}
	})
	seqNs := float64(seq.NsPerOp())
	for _, workers := range []int{2, 4, 8} {
		w := workers
		res := measure(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = core.FollowsCountsParallel(l, w)
			}
		})
		parNs := float64(res.NsPerOp())
		speedup := 0.0
		if parNs > 0 {
			speedup = seqNs / parNs
		}
		rep.FollowsScan = append(rep.FollowsScan, scanCell{
			N: scanN, M: scanM, Workers: w,
			WorkersUsed:  core.ScanWorkersUsed(l, w),
			SequentialNs: seqNs,
			ParallelNs:   parNs,
			Speedup:      speedup,
		})
	}
	return rep, nil
}

// gateSpeedup enforces the parallel-scan trajectory: on a multi-core
// machine every ablation row that actually ran sharded must beat the
// sequential scan. Rows whose worker request degenerated to the sequential
// kernel (WorkersUsed <= 1) carry no parallel signal and are skipped, as is
// the whole gate on a single-CPU machine, where a speedup above 1.0 is not
// achievable by construction.
func gateSpeedup(rep *report) error {
	if rep.NumCPU <= 1 {
		return nil
	}
	for _, c := range rep.FollowsScan {
		if c.WorkersUsed > 1 && c.Speedup < 1.0 {
			return fmt.Errorf("benchreport: parallel-scan regression: n=%d m=%d workers=%d (used %d): speedup %.2f < 1.0 on a %d-CPU machine",
				c.N, c.M, c.Workers, c.WorkersUsed, c.Speedup, rep.NumCPU)
		}
	}
	return nil
}

// loadReport reads a previously written artifact for -check mode.
func loadReport(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchreport: reading artifact: %w", err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("benchreport: decoding %s: %w", path, err)
	}
	if rep.Schema != "procmine-bench-trajectory/v1" {
		return nil, fmt.Errorf("benchreport: %s has schema %q, want procmine-bench-trajectory/v1", path, rep.Schema)
	}
	return &rep, nil
}

// writeReport renders the report as indented JSON.
func writeReport(path string, rep *report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("benchreport: encoding report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("benchreport: writing %s: %w", path, err)
	}
	return nil
}

// cli parses flags, runs the sweep with real measurements, writes the
// artifact, and applies the speedup gate. In -check mode it only loads an
// existing artifact and applies the gate.
func cli(args []string) error {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	out := fs.String("out", "BENCH_mine.json", "path of the JSON artifact to write")
	short := fs.Bool("short", false, "skip the m=10000 mining cells (keeps the scan ablation)")
	check := fs.String("check", "", "apply the speedup gate to an existing artifact instead of measuring")
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("benchreport: parsing flags: %w", err)
	}
	if *check != "" {
		rep, err := loadReport(*check)
		if err != nil {
			return err
		}
		if err := gateSpeedup(rep); err != nil {
			return err
		}
		fmt.Printf("benchreport: %s passes the speedup gate (num_cpu=%d, %d scan cells)\n",
			*check, rep.NumCPU, len(rep.FollowsScan))
		return nil
	}
	rep, err := run(config{short: *short}, testing.Benchmark)
	if err != nil {
		return err
	}
	if err := writeReport(*out, rep); err != nil {
		return err
	}
	fmt.Printf("benchreport: wrote %s (%d mine cells, %d scan cells, GOMAXPROCS=%d)\n",
		*out, len(rep.Table1Mine), len(rep.FollowsScan), rep.GOMAXPROCS)
	// Gate last, so a regression still leaves the artifact on disk for
	// inspection and upload.
	return gateSpeedup(rep)
}

func main() {
	if err := cli(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}
