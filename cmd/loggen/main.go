// Command loggen generates synthetic workflow logs: either executions of a
// random process DAG (the Section 8.1 generator), of the Figure 7 Graph10
// example, or of one of the five Flowmark replica processes (Section 8.2),
// optionally corrupted with Section 6 noise.
//
// Usage:
//
//	loggen -source random -vertices 25 -m 1000 [-seed 7] [-epsilon 0.05] OUT
//	loggen -source graph10 -m 100 OUT
//	loggen -source flowmark -process StressSleep -m 160 OUT.csv
//	loggen -source definition -definition process.json -m 200 OUT
//	loggen -source random -m 500 -target http://127.0.0.1:9180 -rate 200 -duration 30s
//
// The output codec is inferred from the file extension; "-" writes text to
// stdout. With -target the log is streamed to a running procmined's
// /ingest endpoint instead — paced by -rate, cycling for -duration — and a
// throughput/latency-percentile summary is printed, with non-2xx responses
// counted by status class. The run exits non-zero when the fraction of
// rejected or failed requests exceeds -max-error-ratio (default 0).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"procmine"

	"procmine/internal/flowmark"
	"procmine/internal/model"
	"procmine/internal/noise"
	"procmine/internal/synth"
	"procmine/internal/wlog"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "loggen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("loggen", flag.ContinueOnError)
	var (
		source   = fs.String("source", "random", "log source: random, graph10, flowmark, definition")
		defPath  = fs.String("definition", "", "process definition JSON file for -source definition")
		vertices = fs.Int("vertices", 25, "vertex count for -source random")
		edgeProb = fs.Float64("p", 0, "edge probability for -source random (0 = paper density)")
		process  = fs.String("process", "Upload_and_Notify", "process name for -source flowmark: "+strings.Join(flowmark.ProcessNames(), ", "))
		m        = fs.Int("m", 100, "number of executions")
		seed     = fs.Int64("seed", 1998, "PRNG seed")
		epsilon  = fs.Float64("epsilon", 0, "out-of-order noise rate (Section 6); 0 = clean log")
		endBias  = fs.Float64("endbias", 0, "probability of terminating early when END is ready (random/graph10)")
		target   = fs.String("target", "", "procmined base URL: stream the log to its /ingest endpoint instead of writing a file")
		rate     = fs.Float64("rate", 0, "with -target: executions per second (0 = unthrottled)")
		duration = fs.Duration("duration", 0, "with -target: keep cycling the log with fresh instance IDs for this long (0 = one pass)")
		batch    = fs.Int("batch", 1, "with -target: executions per request")
		maxErr   = fs.Float64("max-error-ratio", 0, "with -target: exit non-zero when (rejected+failed)/requests exceeds this fraction")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *target != "" {
		if fs.NArg() != 0 {
			fs.Usage()
			return fmt.Errorf("-target takes no output file argument, got %d", fs.NArg())
		}
	} else if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("need exactly one output file argument (or -), got %d", fs.NArg())
	}

	var (
		log *procmine.Log
		err error
	)
	rng := rand.New(rand.NewSource(*seed))
	switch *source {
	case "random":
		p := *edgeProb
		if p <= 0 {
			p = synth.PaperEdgeProb(*vertices)
		}
		g := synth.RandomDAG(rng, *vertices, p)
		sim, serr := synth.NewSimulator(g, rng)
		if serr != nil {
			return serr
		}
		sim.EndBias = *endBias
		log = sim.GenerateLog("r_", *m)
		fmt.Fprintf(os.Stderr, "generated %d executions of a %d-vertex, %d-edge random DAG\n",
			*m, g.NumVertices(), g.NumEdges())
	case "graph10":
		sim, serr := synth.NewSimulator(synth.Graph10Canonical(), rng)
		if serr != nil {
			return serr
		}
		sim.EndBias = *endBias
		log = sim.GenerateLog("g10_", *m)
	case "flowmark":
		p, perr := flowmark.Get(*process)
		if perr != nil {
			return perr
		}
		eng, eerr := flowmark.NewEngine(p, rng)
		if eerr != nil {
			return eerr
		}
		log, err = eng.GenerateLog(strings.ToLower(*process)+"_", *m, 0)
		if err != nil {
			return err
		}
	case "definition":
		if *defPath == "" {
			return fmt.Errorf("-source definition requires -definition FILE")
		}
		f, ferr := os.Open(*defPath)
		if ferr != nil {
			return ferr
		}
		p, perr := model.ReadProcess(f)
		cerr := f.Close()
		if perr != nil {
			return perr
		}
		if cerr != nil {
			return fmt.Errorf("closing %s: %w", *defPath, cerr)
		}
		eng, eerr := flowmark.NewEngine(p, rng)
		if eerr != nil {
			return eerr
		}
		log, err = eng.GenerateLog("def_", *m, 0)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown source %q", *source)
	}

	if *epsilon > 0 {
		c := noise.NewCorruptor(rng)
		log = c.SwapAdjacent(log, *epsilon)
		fmt.Fprintf(os.Stderr, "corrupted with epsilon=%v out-of-order noise\n", *epsilon)
	}

	if *target != "" {
		return runLoad(*target, log, *rate, *duration, *batch, *maxErr, os.Stdout)
	}

	out := fs.Arg(0)
	if out == "-" {
		return wlog.WriteText(os.Stdout, log.Events())
	}
	if err := procmine.WriteLogFile(out, log); err != nil {
		return err
	}
	st := log.ComputeStats()
	fmt.Fprintf(os.Stderr, "wrote %d executions (%d events, %d activities) to %s\n",
		st.Executions, st.Events, st.Activities, out)
	return nil
}
