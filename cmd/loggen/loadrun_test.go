package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"procmine/internal/serve"
	"procmine/internal/wlog"
)

// TestRunLoadMode drives a real serve.Server through the loggen load
// generator and checks every generated execution arrived intact.
func TestRunLoadMode(t *testing.T) {
	s, err := serve.New(serve.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	if err := run([]string{"-source", "graph10", "-m", "12", "-batch", "3", "-target", ts.URL}); err != nil {
		t.Fatalf("run -target: %v", err)
	}

	resp, err := http.Get(ts.URL + "/model?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var m serve.ModelResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if m.Executions != 12 {
		t.Fatalf("server mined %d executions, want 12", m.Executions)
	}
}

// TestRunLoadModeDuration checks the cycling path: with -duration set the
// generator re-IDs executions per pass, so the server sees distinct
// process instances.
func TestRunLoadModeDuration(t *testing.T) {
	s, err := serve.New(serve.Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	// 2 executions cycled for ~150ms at 100 exec/s: at least two passes.
	if err := run([]string{"-source", "graph10", "-m", "2", "-target", ts.URL,
		"-rate", "100", "-duration", "150ms"}); err != nil {
		t.Fatalf("run -target -duration: %v", err)
	}
	resp, err := http.Get(ts.URL + "/model?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var m serve.ModelResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if m.Executions <= 2 {
		t.Fatalf("server mined %d executions, want > 2 (cycling never re-IDed)", m.Executions)
	}
}

// TestRunLoadErrorRatio checks the -max-error-ratio exit contract: with the
// default budget of 0 any failed request fails the run, while a budget of 1
// tolerates everything.
func TestRunLoadErrorRatio(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	err := run([]string{"-source", "graph10", "-m", "4", "-batch", "2", "-target", ts.URL})
	if err == nil || !strings.Contains(err.Error(), "error ratio") {
		t.Fatalf("err = %v, want error-ratio failure against an all-500 server", err)
	}
	if err := run([]string{"-source", "graph10", "-m", "4", "-batch", "2", "-target", ts.URL,
		"-max-error-ratio", "1"}); err != nil {
		t.Fatalf("-max-error-ratio 1 should tolerate failures, got %v", err)
	}
}

// TestStatusClass pins the class bucketing.
func TestStatusClass(t *testing.T) {
	for code, want := range map[int]string{200: "2xx", 429: "4xx", 500: "5xx", 99: "other"} {
		if got := statusClass(code); got != want {
			t.Errorf("statusClass(%d) = %q, want %q", code, got, want)
		}
	}
}

// TestRunLoadRejectsOutputArg checks the flag contract.
func TestRunLoadRejectsOutputArg(t *testing.T) {
	err := run([]string{"-source", "graph10", "-m", "2", "-target", "http://127.0.0.1:1", "out.txt"})
	if err == nil || !strings.Contains(err.Error(), "no output file") {
		t.Fatalf("err = %v, want output-file rejection", err)
	}
}

// TestReID keeps cycle-qualified IDs distinct and cycle 0 untouched.
func TestReID(t *testing.T) {
	e := wlog.Execution{ID: "x1"}
	if got := reID(e, 0).ID; got != "x1" {
		t.Fatalf("cycle 0 re-IDed to %q", got)
	}
	if got := reID(e, 3).ID; got != "c3_x1" {
		t.Fatalf("cycle 3 ID = %q, want c3_x1", got)
	}
}
