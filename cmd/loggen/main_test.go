package main

import (
	"os"
	"path/filepath"
	"testing"

	"procmine"
)

func TestRunRandomSource(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "random.txt")
	if err := run([]string{"-source", "random", "-vertices", "12", "-m", "40", "-seed", "3", out}); err != nil {
		t.Fatalf("run: %v", err)
	}
	l, err := procmine.ReadLogFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 40 {
		t.Fatalf("generated %d executions, want 40", l.Len())
	}
}

func TestRunGraph10Source(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "g10.csv")
	if err := run([]string{"-source", "graph10", "-m", "25", out}); err != nil {
		t.Fatalf("run: %v", err)
	}
	l, err := procmine.ReadLogFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 25 {
		t.Fatalf("generated %d executions, want 25", l.Len())
	}
	// Graph10 activities are START/END + B..I.
	acts := l.Activities()
	if acts[len(acts)-1] != "START" {
		t.Fatalf("unexpected activities: %v", acts)
	}
}

func TestRunFlowmarkSource(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "fm.json")
	if err := run([]string{"-source", "flowmark", "-process", "Pend_Block", "-m", "30", out}); err != nil {
		t.Fatalf("run: %v", err)
	}
	l, err := procmine.ReadLogFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 30 {
		t.Fatalf("generated %d executions, want 30", l.Len())
	}
}

func TestRunNoisyOutput(t *testing.T) {
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.txt")
	noisy := filepath.Join(dir, "noisy.txt")
	if err := run([]string{"-source", "random", "-vertices", "8", "-m", "50", "-seed", "5", clean}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-source", "random", "-vertices", "8", "-m", "50", "-seed", "5", "-epsilon", "0.3", noisy}); err != nil {
		t.Fatal(err)
	}
	a, err := procmine.ReadLogFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	b, err := procmine.ReadLogFile(noisy)
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for i := range a.Executions {
		if a.Executions[i].String() != b.Executions[i].String() {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("epsilon=0.3 produced an identical log")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no output argument accepted")
	}
	if err := run([]string{"-source", "bogus", "out.txt"}); err == nil {
		t.Error("bogus source accepted")
	}
	if err := run([]string{"-source", "flowmark", "-process", "bogus", "out.txt"}); err == nil {
		t.Error("bogus process accepted")
	}
}

func TestRunDefinitionSource(t *testing.T) {
	dir := t.TempDir()
	def := filepath.Join(dir, "proc.json")
	doc := `{
  "name": "Mini",
  "start": "S",
  "end": "E",
  "edges": [
    {"from": "S", "to": "A"},
    {"from": "A", "to": "B", "condition": "o[0] >= 5"},
    {"from": "A", "to": "E"},
    {"from": "B", "to": "E"}
  ],
  "outputs": {"A": {"width": 1, "max": 10}}
}`
	if err := os.WriteFile(def, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "def.txt")
	if err := run([]string{"-source", "definition", "-definition", def, "-m", "50", out}); err != nil {
		t.Fatalf("run: %v", err)
	}
	l, err := procmine.ReadLogFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 50 {
		t.Fatalf("generated %d executions, want 50", l.Len())
	}
	// B must appear in some but not all executions (conditional branch).
	withB := l.WithActivity("B").Len()
	if withB == 0 || withB == 50 {
		t.Fatalf("conditional activity B in %d of 50 executions", withB)
	}
	// Missing flag / file errors.
	if err := run([]string{"-source", "definition", out}); err == nil {
		t.Error("missing -definition accepted")
	}
	if err := run([]string{"-source", "definition", "-definition", filepath.Join(dir, "nope.json"), out}); err == nil {
		t.Error("missing definition file accepted")
	}
}
