package main

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"procmine"

	"procmine/internal/wlog"
)

// Load-generator mode: instead of writing the generated log to a file,
// stream it to a running procmined instance and report throughput and
// latency percentiles. The sender is deliberately single-threaded and
// paced — the point is a reproducible smoke/soak driver, not a stress
// benchmark — and it never splits one execution across requests, matching
// the service's emission contract.

// loadStats accumulates one load run's outcome.
type loadStats struct {
	requests  int
	ok        int
	rejected  int            // 429: shard backpressure
	failed    int            // any other non-2xx or transport error
	byClass   map[string]int // non-2xx outcomes by status class ("4xx", "5xx", "error")
	events    int
	execs     int
	latencies []time.Duration
}

// statusClass buckets an HTTP status code ("4xx", "5xx", ...).
func statusClass(code int) string {
	if code >= 100 && code < 600 {
		return fmt.Sprintf("%dxx", code/100)
	}
	return "other"
}

// countClass tallies one non-2xx outcome under its status class; transport
// failures use the pseudo-class "error".
func (st *loadStats) countClass(class string) {
	if st.byClass == nil {
		st.byClass = make(map[string]int)
	}
	st.byClass[class]++
}

// errRatio is the fraction of requests that did not succeed — rejections
// (429) and failures both count, since either means the server did not
// accept the batch.
func (st *loadStats) errRatio() float64 {
	if st.requests == 0 {
		return 0
	}
	return float64(st.rejected+st.failed) / float64(st.requests)
}

// percentile returns the p-th latency percentile (0 < p <= 100) of a
// sorted sample.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p/100*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// report prints the run summary.
func (st *loadStats) report(w io.Writer, elapsed time.Duration) {
	secs := elapsed.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	_, _ = fmt.Fprintf(w, "loggen: sent %d executions (%d events) in %v: %.1f exec/s, %.1f events/s\n",
		st.execs, st.events, elapsed.Round(time.Millisecond), float64(st.execs)/secs, float64(st.events)/secs)
	_, _ = fmt.Fprintf(w, "loggen: %d requests: %d ok, %d rejected (429), %d failed\n",
		st.requests, st.ok, st.rejected, st.failed)
	if len(st.byClass) > 0 {
		classes := make([]string, 0, len(st.byClass))
		for c := range st.byClass {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		parts := make([]string, 0, len(classes))
		for _, c := range classes {
			parts = append(parts, fmt.Sprintf("%s=%d", c, st.byClass[c]))
		}
		_, _ = fmt.Fprintf(w, "loggen: non-2xx by class: %s\n", strings.Join(parts, " "))
	}
	sorted := append([]time.Duration(nil), st.latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	_, _ = fmt.Fprintf(w, "loggen: latency p50=%v p95=%v p99=%v max=%v\n",
		percentile(sorted, 50).Round(time.Microsecond),
		percentile(sorted, 95).Round(time.Microsecond),
		percentile(sorted, 99).Round(time.Microsecond),
		percentile(sorted, 100).Round(time.Microsecond))
}

// reID clones an execution under a cycle-qualified ID so repeated passes
// over the same log stay distinct process instances.
func reID(e wlog.Execution, cycle int) wlog.Execution {
	if cycle == 0 {
		return e
	}
	out := e
	out.ID = fmt.Sprintf("c%d_%s", cycle, e.ID)
	return out
}

// finish prints the summary and enforces the error-ratio budget: the run
// fails when more than maxRatio of its requests were rejected or failed,
// so smoke scripts get a non-zero exit from an unhealthy server even
// though individual bad responses only warn.
func (st *loadStats) finish(w io.Writer, elapsed time.Duration, maxRatio float64) error {
	st.report(w, elapsed)
	if r := st.errRatio(); r > maxRatio {
		return fmt.Errorf("error ratio %.3f (%d rejected + %d failed of %d requests) exceeds -max-error-ratio %.3f",
			r, st.rejected, st.failed, st.requests, maxRatio)
	}
	return nil
}

// runLoad streams the generated log to target's /ingest endpoint in
// batches of whole executions, paced at rate executions per second
// (0 = unthrottled), until the log is exhausted — or, when duration > 0,
// cycling the log with fresh instance IDs until the duration elapses.
func runLoad(target string, l *procmine.Log, rate float64, duration time.Duration, batch int, maxErrRatio float64, w io.Writer) error {
	if batch <= 0 {
		batch = 1
	}
	target = strings.TrimSuffix(target, "/")
	client := &http.Client{Timeout: 30 * time.Second}
	st := &loadStats{}
	start := time.Now()
	next := start
	var interval time.Duration
	if rate > 0 {
		interval = time.Duration(float64(batch) / rate * float64(time.Second))
	}

	for cycle := 0; ; cycle++ {
		for i := 0; i < len(l.Executions); i += batch {
			if duration > 0 && time.Since(start) >= duration {
				return st.finish(w, time.Since(start), maxErrRatio)
			}
			if interval > 0 {
				time.Sleep(time.Until(next))
				next = next.Add(interval)
			}
			end := i + batch
			if end > len(l.Executions) {
				end = len(l.Executions)
			}
			var events []wlog.Event
			for _, e := range l.Executions[i:end] {
				events = append(events, (&wlog.Log{Executions: []wlog.Execution{reID(e, cycle)}}).Events()...)
			}
			var body strings.Builder
			if err := wlog.WriteText(&body, events); err != nil {
				return err
			}
			sent := time.Now()
			resp, err := client.Post(target+"/ingest?format=text", "text/plain", strings.NewReader(body.String()))
			st.requests++
			if err != nil {
				st.failed++
				st.countClass("error")
				_, _ = fmt.Fprintf(w, "loggen: request failed: %v\n", err)
				continue
			}
			st.latencies = append(st.latencies, time.Since(sent))
			_, _ = io.Copy(io.Discard, resp.Body)
			if err := resp.Body.Close(); err != nil {
				return err
			}
			switch {
			case resp.StatusCode == http.StatusOK:
				st.ok++
				st.execs += end - i
				st.events += len(events)
			case resp.StatusCode == http.StatusTooManyRequests:
				st.rejected++
				st.countClass(statusClass(resp.StatusCode))
			default:
				st.failed++
				st.countClass(statusClass(resp.StatusCode))
				_, _ = fmt.Fprintf(w, "loggen: request status %d\n", resp.StatusCode)
			}
		}
		if duration <= 0 {
			break
		}
	}
	return st.finish(w, time.Since(start), maxErrRatio)
}
