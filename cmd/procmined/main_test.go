package main

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"procmine/internal/core"
	"procmine/internal/wlog"
)

// binPath is the procmined binary built once in TestMain for the
// process-level tests.
var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "procmined-bin")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binPath = filepath.Join(dir, "procmined")
	build := exec.Command("go", "build", "-o", binPath, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "building procmined:", err)
		os.Exit(1)
	}
	code := m.Run()
	if err := os.RemoveAll(dir); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	os.Exit(code)
}

// daemon is one running procmined process under test.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://host:port
	out  *bufio.Scanner
}

// startDaemon launches procmined on a free port and waits for readiness.
func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(binPath, append([]string{"-listen", "127.0.0.1:0"}, args...)...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, out: bufio.NewScanner(stdout)}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})
	deadline := time.Now().Add(10 * time.Second)
	for d.out.Scan() {
		line := d.out.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr := strings.Fields(line[i+len("listening on "):])[0]
			d.base = "http://" + addr
			return d
		}
		if time.Now().After(deadline) {
			break
		}
	}
	t.Fatalf("procmined never reported a listen address (scan err: %v)", d.out.Err())
	return nil
}

// post sends a body and requires the given status.
func (d *daemon) post(t *testing.T, path, body string, want int) {
	t.Helper()
	resp, err := http.Post(d.base+path, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	data, _ := io.ReadAll(resp.Body)
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != want {
		t.Fatalf("POST %s = %d, want %d; body: %s", path, resp.StatusCode, want, data)
	}
}

// get fetches a path and returns the body.
func (d *daemon) get(t *testing.T, path string) string {
	t.Helper()
	resp, err := http.Get(d.base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	data, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, data)
	}
	return string(data)
}

// fixtureLog builds the test trail over the Example 7 variants.
func fixtureLog(m int) *wlog.Log {
	variants := []string{"ABCF", "ACDF", "ADEF", "AECF"}
	seqs := make([]string, m)
	for i := range seqs {
		seqs[i] = variants[i%len(variants)]
	}
	return wlog.LogFromStrings(seqs...)
}

// textOf serializes a log in the text codec.
func textOf(t *testing.T, l *wlog.Log) string {
	t.Helper()
	var b strings.Builder
	if err := wlog.WriteText(&b, l.Events()); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// batchDot mines the whole log in-process, as the oracle for the recovered
// service model.
func batchDot(t *testing.T, l *wlog.Log) string {
	t.Helper()
	im := core.NewIncrementalMiner()
	if err := im.AddLog(l); err != nil {
		t.Fatal(err)
	}
	g, err := im.Mine(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g.Dot("procmined")
}

// TestKillRestartParity is the acceptance scenario: SIGKILL the daemon
// after a durable snapshot, restart it from the checkpoints, resend the
// unacknowledged batch, and require the mined model to be byte-identical to
// a single-process batch run over the whole log.
func TestKillRestartParity(t *testing.T) {
	dir := t.TempDir()
	whole := fixtureLog(20)
	a := &wlog.Log{Executions: whole.Executions[:12]}
	b := &wlog.Log{Executions: whole.Executions[12:]}

	d1 := startDaemon(t, "-shards", "3", "-snapshot-dir", dir)
	d1.post(t, "/ingest?format=text", textOf(t, a), http.StatusOK)
	// The snapshot is the durability cut: A is now acked.
	d1.post(t, "/admin/snapshot", "", http.StatusOK)
	// B arrives after the cut; the crash happens before the next snapshot,
	// so B is lost and the client must resend it.
	d1.post(t, "/ingest?format=text", textOf(t, b), http.StatusOK)
	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := d1.cmd.Wait(); err == nil {
		t.Fatal("SIGKILLed process exited cleanly")
	}

	d2 := startDaemon(t, "-shards", "3", "-snapshot-dir", dir)
	if got, want := d2.get(t, "/model?format=dot"), batchDot(t, a); got != want {
		t.Fatalf("restored model is not batch(A):\ngot:\n%s\nwant:\n%s", got, want)
	}
	d2.post(t, "/ingest?format=text", textOf(t, b), http.StatusOK)
	if got, want := d2.get(t, "/model?format=dot"), batchDot(t, whole); got != want {
		t.Errorf("recovered model diverges from the single-process batch run\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestSigtermDrain checks the graceful path end to end: SIGTERM exits 0
// after flushing checkpoints — including a still-open execution, whose END
// arrives only after the restart.
func TestSigtermDrain(t *testing.T) {
	dir := t.TempDir()
	d1 := startDaemon(t, "-shards", "2", "-snapshot-dir", dir)
	d1.post(t, "/ingest?format=text", textOf(t, fixtureLog(4)), http.StatusOK)
	d1.post(t, "/ingest?format=text", "open1 A START 99000\n", http.StatusOK)

	if err := d1.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d1.cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM exit: %v", err)
	}
	for i := 0; i < 2; i++ {
		path := filepath.Join(dir, fmt.Sprintf("shard-%04d.snap.json", i))
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("shutdown left no checkpoint for shard %d: %v", i, err)
		}
	}

	d2 := startDaemon(t, "-shards", "2", "-snapshot-dir", dir)
	d2.post(t, "/ingest?format=text", "open1 A END 99500\n", http.StatusOK)
	stats := d2.get(t, "/stats")
	if !strings.Contains(stats, `"executions": 5`) {
		t.Errorf("stats after drain/restart lack the handed-off execution: %s", stats)
	}
}

// TestOverloadAndRecovery checks the backpressure contract through the real
// HTTP stack: an overloaded shard sheds with 429 + Retry-After while other
// traffic keeps flowing.
func TestOverloadAndRecovery(t *testing.T) {
	d := startDaemon(t, "-shards", "1", "-max-open", "1")
	d.post(t, "/ingest?format=text", "p1 A START 1000\n", http.StatusOK)

	resp, err := http.Post(d.base+"/ingest?format=text", "text/plain", strings.NewReader("p2 A START 2000\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded ingest = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 lacks Retry-After")
	}
	// Completing the open execution frees the slot.
	d.post(t, "/ingest?format=text", "p1 A END 3000\n", http.StatusOK)
	d.post(t, "/ingest?format=text", "p2 A START 4000\np2 A END 5000\n", http.StatusOK)
}
