// Command procmined is the always-on mining service: an HTTP server that
// ingests workflow event streams (text, CSV, JSON, or XES), partitions them
// by process-instance key across independent mining shards, and serves the
// mined process model at any time.
//
// Usage:
//
//	procmined -listen 127.0.0.1:9180 -shards 4 -snapshot-dir /var/lib/procmined
//
// Endpoints:
//
//	POST /ingest?format=text|csv|json|xes   ingest an event batch (gzip ok)
//	GET  /model?format=dot|json[&shard=N]   mine and render the model
//	GET  /stats                             per-shard and aggregate health
//	GET  /healthz                           liveness (503 while draining)
//	GET  /metrics                           Prometheus text exposition
//	POST /admin/snapshot                    force a durable checkpoint
//	POST /admin/drain                       close streams, report totals
//
// With -admin-addr set, a second operator-only listener serves
// /debug/pprof/*, /debug/obs (raw registry dump as JSON), and /metrics.
// Structured JSON logs go to stderr; stdout carries only the plain
// readiness and drain lines that supervisors parse.
//
// On SIGTERM or SIGINT the server drains gracefully: new work is refused
// with 503, in-flight requests finish, execution streams are closed under
// the configured recovery policy, and every shard is checkpointed before
// exit. On SIGKILL the last checkpoint is the recovery point: state acked
// by a snapshot is restored on restart, and clients resend batches sent
// after it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"procmine/internal/core"
	"procmine/internal/obs"
	"procmine/internal/serve"
	"procmine/internal/wlog"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "procmined:", err)
		os.Exit(1)
	}
}

// parseLogLevel maps the -log-level flag to a slog level.
func parseLogLevel(name string) (slog.Level, error) {
	switch name {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return slog.LevelInfo, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", name)
	}
}

// parsePolicy maps the -policy flag to a recovery policy.
func parsePolicy(name string) (wlog.Policy, error) {
	switch name {
	case "failfast":
		return wlog.FailFast, nil
	case "skip":
		return wlog.Skip, nil
	case "quarantine":
		return wlog.Quarantine, nil
	default:
		return wlog.FailFast, fmt.Errorf("unknown policy %q (want failfast, skip, or quarantine)", name)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("procmined", flag.ContinueOnError)
	var (
		listen     = fs.String("listen", "127.0.0.1:9180", "listen address (host:port; port 0 picks a free port)")
		adminAddr  = fs.String("admin-addr", "", "separate admin listen address for /debug/pprof, /debug/obs, and /metrics (empty = no admin listener)")
		logLevel   = fs.String("log-level", "info", "structured log level on stderr: debug, info, warn, error")
		shards     = fs.Int("shards", 4, "number of mining shards (process-instance keys hash across them)")
		policy     = fs.String("policy", "skip", "ingestion recovery policy: failfast, skip, quarantine")
		maxOpen    = fs.Int("max-open", 0, "per-shard open-execution admission budget; excess batches get 429 (0 = unlimited)")
		maxSteps   = fs.Int("max-steps", 0, "per-execution step watermark; longer executions are quarantined (0 = unlimited)")
		snapDir    = fs.String("snapshot-dir", "", "directory for crash-recovery checkpoints (empty = no persistence)")
		snapEvery  = fs.Int("snapshot-every", 0, "checkpoint a shard after this many completed executions (0 = only explicit/shutdown snapshots)")
		reqTimeout = fs.Duration("request-timeout", 30*time.Second, "per-request deadline for ingest and model mining (0 = none)")
		drainWait  = fs.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight requests")
		threshold  = fs.Int("threshold", 0, "noise threshold T for served models (Section 6)")
		epsilon    = fs.Float64("epsilon", 0, "adaptive per-pair noise rate for served models (overrides -threshold)")
		brkWindow  = fs.Int("breaker-window", 0, "circuit-breaker sample window in events; a shard exceeding -breaker-ratio bad events degrades to skip (0 = disabled)")
		brkRatio   = fs.Float64("breaker-ratio", 0.5, "bad-event fraction of the window that trips a shard's breaker")
		brkBackoff = fs.Duration("breaker-backoff", time.Second, "initial breaker open duration; doubles per consecutive re-trip")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	pol, err := parsePolicy(*policy)
	if err != nil {
		return err
	}
	level, err := parseLogLevel(*logLevel)
	if err != nil {
		return err
	}

	// Structured logs go to stderr as JSON; stdout is reserved for the
	// plain readiness and drain lines that supervisors parse.
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	reg := obs.NewRegistry()

	srv, err := serve.New(serve.Config{
		Shards: *shards,
		Mine:   core.Options{MinSupport: *threshold, AdaptiveEpsilon: *epsilon},
		Ingest: wlog.IngestOptions{
			Policy:               pol,
			MaxStepsPerExecution: *maxSteps,
		},
		MaxOpenPerShard: *maxOpen,
		SnapshotDir:     *snapDir,
		SnapshotEvery:   *snapEvery,
		RequestTimeout:  *reqTimeout,
		Breaker: serve.BreakerConfig{
			Window:    *brkWindow,
			TripRatio: *brkRatio,
			Backoff:   *brkBackoff,
		},
		Obs:    reg,
		Logger: logger,
	})
	if err != nil {
		return err
	}
	if n := srv.Restored(); n > 0 {
		_, _ = fmt.Fprintf(stdout, "procmined: restored %d shard checkpoints from %s\n", n, *snapDir)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	// The resolved address line is the readiness contract: supervisors and
	// the smoke tests wait for it before sending traffic.
	_, _ = fmt.Fprintf(stdout, "procmined: listening on %s (%d shards, policy %s)\n", ln.Addr(), *shards, *policy)
	logger.Info("listening", "addr", ln.Addr().String(), "shards", *shards, "policy", *policy)

	// The admin listener exposes pprof, the raw registry dump, and a second
	// /metrics on an operator-only address, sharing the server's registry.
	var adminSrv *http.Server
	if *adminAddr != "" {
		aln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			return err
		}
		_, _ = fmt.Fprintf(stdout, "procmined: admin listening on %s\n", aln.Addr())
		logger.Info("admin listening", "addr", aln.Addr().String())
		adminSrv = &http.Server{Handler: obs.NewAdminMux(reg)}
		go func() {
			if err := adminSrv.Serve(aln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("admin listener failed", "error", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	_, _ = fmt.Fprintf(stdout, "procmined: draining (timeout %s)\n", *drainWait)
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	drainErr := srv.Shutdown(dctx)
	if err := hs.Shutdown(dctx); err != nil && drainErr == nil {
		drainErr = err
	}
	if adminSrv != nil {
		if err := adminSrv.Shutdown(dctx); err != nil && drainErr == nil {
			drainErr = err
		}
	}
	if serveErr := <-errc; !errors.Is(serveErr, http.ErrServerClosed) && drainErr == nil {
		drainErr = serveErr
	}
	if drainErr != nil {
		return fmt.Errorf("shutdown: %w", drainErr)
	}
	_, _ = fmt.Fprintln(stdout, "procmined: drained cleanly")
	return nil
}
