package main

import (
	"os"
	"path/filepath"
	"testing"

	"procmine"
)

// writeExampleLog writes the Example 7 log to a temp file and returns the
// path.
func writeExampleLog(t *testing.T, dir, name string) string {
	t.Helper()
	l := procmine.LogFromStrings("ABCF", "ACDF", "ADEF", "AECF")
	path := filepath.Join(dir, name)
	if err := procmine.WriteLogFile(path, l); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunMineText(t *testing.T) {
	dir := t.TempDir()
	path := writeExampleLog(t, dir, "log.txt")
	if err := run([]string{path}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunMineDotWithConditionsAndCheck(t *testing.T) {
	dir := t.TempDir()
	path := writeExampleLog(t, dir, "log.csv")
	if err := run([]string{"-output", "dot", "-conditions", "-check", "-name", "Ex7", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunAlgorithms(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.txt")
	if err := procmine.WriteLogFile(full, procmine.LogFromStrings("ABCDE", "ACDBE")); err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{"auto", "special", "dag", "cyclic"} {
		if err := run([]string{"-algorithm", alg, full}); err != nil {
			t.Errorf("algorithm %s: %v", alg, err)
		}
	}
	partial := writeExampleLog(t, dir, "partial.txt")
	if err := run([]string{"-algorithm", "special", partial}); err == nil {
		t.Error("special algorithm accepted partial log")
	}
	if err := run([]string{"-algorithm", "bogus", partial}); err == nil {
		t.Error("bogus algorithm accepted")
	}
	if err := run([]string{"-output", "bogus", partial}); err == nil {
		t.Error("bogus output format accepted")
	}
}

func TestRunCompare(t *testing.T) {
	dir := t.TempDir()
	path := writeExampleLog(t, dir, "log.txt")

	// Build the expected reference by mining directly.
	l, err := procmine.ReadLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	g, err := procmine.Mine(l, procmine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref := filepath.Join(dir, "ref.adj")
	if err := os.WriteFile(ref, []byte(g.Adjacency()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-compare", ref, path}); err != nil {
		t.Fatalf("compare against exact reference: %v", err)
	}

	// A wrong reference must fail.
	bad := filepath.Join(dir, "bad.adj")
	if err := os.WriteFile(bad, []byte("A -> F\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-compare", bad, path}); err == nil {
		t.Fatal("compare against wrong reference succeeded")
	}
	if err := run([]string{"-compare", filepath.Join(dir, "missing.adj"), path}); err == nil {
		t.Fatal("compare against missing reference succeeded")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no arguments accepted")
	}
	if err := run([]string{"/does/not/exist.txt"}); err == nil {
		t.Error("missing log file accepted")
	}
	dir := t.TempDir()
	badLog := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(badLog, []byte("p A START\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{badLog}); err == nil {
		t.Error("malformed log accepted")
	}
}

func TestRunBPMNOutput(t *testing.T) {
	dir := t.TempDir()
	path := writeExampleLog(t, dir, "log.txt")
	if err := run([]string{"-output", "bpmn", "-name", "Ex7", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"-output", "bpmn", "-conditions", "-support", path}); err != nil {
		t.Fatalf("run with conditions: %v", err)
	}
}

func TestRunLayersOutput(t *testing.T) {
	dir := t.TempDir()
	path := writeExampleLog(t, dir, "log.txt")
	if err := run([]string{"-output", "layers", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunAlphaAlgorithm(t *testing.T) {
	dir := t.TempDir()
	path := writeExampleLog(t, dir, "log.txt")
	if err := run([]string{"-algorithm", "alpha", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunSampleTestdata(t *testing.T) {
	// The committed sample trail must mine to the Upload_and_Notify shape.
	if err := run([]string{"-stats", "../../testdata/sample.csv"}); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if err := run([]string{"-check", "-conditions", "../../testdata/sample.csv"}); err != nil {
		t.Fatalf("mine: %v", err)
	}
}

func TestRunVerbose(t *testing.T) {
	dir := t.TempDir()
	path := writeExampleLog(t, dir, "log.txt")
	if err := run([]string{"-verbose", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
}
