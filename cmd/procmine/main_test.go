package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"procmine"
)

// writeExampleLog writes the Example 7 log to a temp file and returns the
// path.
func writeExampleLog(t *testing.T, dir, name string) string {
	t.Helper()
	l := procmine.LogFromStrings("ABCF", "ACDF", "ADEF", "AECF")
	path := filepath.Join(dir, name)
	if err := procmine.WriteLogFile(path, l); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunMineText(t *testing.T) {
	dir := t.TempDir()
	path := writeExampleLog(t, dir, "log.txt")
	if err := run([]string{path}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunMineDotWithConditionsAndCheck(t *testing.T) {
	dir := t.TempDir()
	path := writeExampleLog(t, dir, "log.csv")
	if err := run([]string{"-output", "dot", "-conditions", "-check", "-name", "Ex7", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunAlgorithms(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.txt")
	if err := procmine.WriteLogFile(full, procmine.LogFromStrings("ABCDE", "ACDBE")); err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{"auto", "special", "dag", "cyclic"} {
		if err := run([]string{"-algorithm", alg, full}); err != nil {
			t.Errorf("algorithm %s: %v", alg, err)
		}
	}
	partial := writeExampleLog(t, dir, "partial.txt")
	if err := run([]string{"-algorithm", "special", partial}); err == nil {
		t.Error("special algorithm accepted partial log")
	}
	if err := run([]string{"-algorithm", "bogus", partial}); err == nil {
		t.Error("bogus algorithm accepted")
	}
	if err := run([]string{"-output", "bogus", partial}); err == nil {
		t.Error("bogus output format accepted")
	}
}

func TestRunCompare(t *testing.T) {
	dir := t.TempDir()
	path := writeExampleLog(t, dir, "log.txt")

	// Build the expected reference by mining directly.
	l, err := procmine.ReadLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	g, err := procmine.Mine(l, procmine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref := filepath.Join(dir, "ref.adj")
	if err := os.WriteFile(ref, []byte(g.Adjacency()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-compare", ref, path}); err != nil {
		t.Fatalf("compare against exact reference: %v", err)
	}

	// A wrong reference must fail.
	bad := filepath.Join(dir, "bad.adj")
	if err := os.WriteFile(bad, []byte("A -> F\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-compare", bad, path}); err == nil {
		t.Fatal("compare against wrong reference succeeded")
	}
	if err := run([]string{"-compare", filepath.Join(dir, "missing.adj"), path}); err == nil {
		t.Fatal("compare against missing reference succeeded")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no arguments accepted")
	}
	if err := run([]string{"/does/not/exist.txt"}); err == nil {
		t.Error("missing log file accepted")
	}
	dir := t.TempDir()
	badLog := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(badLog, []byte("p A START\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{badLog}); err == nil {
		t.Error("malformed log accepted")
	}
}

func TestRunBPMNOutput(t *testing.T) {
	dir := t.TempDir()
	path := writeExampleLog(t, dir, "log.txt")
	if err := run([]string{"-output", "bpmn", "-name", "Ex7", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"-output", "bpmn", "-conditions", "-support", path}); err != nil {
		t.Fatalf("run with conditions: %v", err)
	}
}

func TestRunLayersOutput(t *testing.T) {
	dir := t.TempDir()
	path := writeExampleLog(t, dir, "log.txt")
	if err := run([]string{"-output", "layers", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunAlphaAlgorithm(t *testing.T) {
	dir := t.TempDir()
	path := writeExampleLog(t, dir, "log.txt")
	if err := run([]string{"-algorithm", "alpha", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunSampleTestdata(t *testing.T) {
	// The committed sample trail must mine to the Upload_and_Notify shape.
	if err := run([]string{"-stats", "../../testdata/sample.csv"}); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if err := run([]string{"-check", "-conditions", "../../testdata/sample.csv"}); err != nil {
		t.Fatalf("mine: %v", err)
	}
}

func TestRunVerbose(t *testing.T) {
	dir := t.TempDir()
	path := writeExampleLog(t, dir, "log.txt")
	if err := run([]string{"-verbose", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// writeCorruptLog writes a trail with one garbage line and one END without
// a START (damaging execution p2 only).
func writeCorruptLog(t *testing.T, dir, name string) string {
	t.Helper()
	trail := `p1 A START 1
p1 A END 2
p1 B START 3
p1 B END 4
%%% garbage %%%
p2 A START 1
p2 A END 2
p2 C END 9
p2 B START 3
p2 B END 4
p3 A START 1
p3 A END 2
p3 B START 3
p3 B END 4
`
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(trail), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunRecoveryFlags(t *testing.T) {
	dir := t.TempDir()
	path := writeCorruptLog(t, dir, "corrupt.txt")

	// Default FailFast refuses the trail and classifies it as an input
	// error (exit status 2 in main).
	err := run([]string{path})
	if err == nil {
		t.Fatal("FailFast accepted corrupt trail")
	}
	var ie inputError
	if !errors.As(err, &ie) {
		t.Errorf("corrupt input error %v is not an inputError (would exit 1, want 2)", err)
	}

	// Lenient and quarantine both mine successfully.
	if err := run([]string{"-lenient", path}); err != nil {
		t.Errorf("-lenient: %v", err)
	}
	if err := run([]string{"-quarantine", "-verbose", path}); err != nil {
		t.Errorf("-quarantine -verbose: %v", err)
	}

	// The two policies are mutually exclusive.
	if err := run([]string{"-lenient", "-quarantine", path}); err == nil {
		t.Error("-lenient -quarantine accepted together")
	}
}

func TestRunTimeoutFlag(t *testing.T) {
	dir := t.TempDir()
	path := writeExampleLog(t, dir, "log.txt")
	// A generous timeout passes...
	if err := run([]string{"-timeout", "30s", path}); err != nil {
		t.Fatalf("-timeout 30s: %v", err)
	}
	// ...and an expired one aborts mining with a non-input error (exit 1).
	err := run([]string{"-timeout", "1ns", "-algorithm", "dag", path})
	if err == nil {
		t.Fatal("-timeout 1ns mined anyway")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", err)
	}
	var ie inputError
	if errors.As(err, &ie) {
		t.Error("timeout classified as input error (would exit 2, want 1)")
	}
}

func TestRunMissingFileIsInputError(t *testing.T) {
	err := run([]string{"/does/not/exist.txt"})
	if err == nil {
		t.Fatal("missing file accepted")
	}
	var ie inputError
	if !errors.As(err, &ie) {
		t.Errorf("missing file error %v is not an inputError", err)
	}
}
