// Command procmine mines a process model graph from a workflow log file and
// prints it as an adjacency listing or Graphviz DOT, optionally learning the
// Boolean edge conditions from logged activity outputs.
//
// Usage:
//
//	procmine [-algorithm auto|special|dag|cyclic|alpha]
//	         [-threshold T | -epsilon E] [-output text|layers|dot|bpmn]
//	         [-lenient | -quarantine] [-timeout D]
//	         [-conditions] [-check] [-support] [-verbose] [-trace]
//	         [-compare REF.adj] [-stats] [-name NAME] LOGFILE
//
// The log format is inferred from the file extension (.csv, .json, .xes, a
// trailing .gz for gzip, or the space-separated text format otherwise);
// "-" reads text-format events from stdin.
//
// Exit status: 0 on success, 2 when the input log is invalid or unreadable,
// 1 when mining (or a downstream stage) fails.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"procmine"

	"procmine/internal/alpha"
	"procmine/internal/bpmn"
	"procmine/internal/core"
	"procmine/internal/graph"
	"procmine/internal/obs"
)

// inputError marks failures caused by the input log (unreadable, malformed,
// fails validation) rather than by mining; main maps it to exit status 2.
type inputError struct{ err error }

func (e inputError) Error() string { return e.err.Error() }
func (e inputError) Unwrap() error { return e.err }

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "procmine:", err)
		var ie inputError
		if errors.As(err, &ie) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("procmine", flag.ContinueOnError)
	var (
		algorithm  = fs.String("algorithm", "auto", "mining algorithm: auto, special (Alg 1), dag (Alg 2), cyclic (Alg 3), alpha (baseline)")
		threshold  = fs.Int("threshold", 0, "noise threshold T: ignore pairwise orders observed in fewer executions (Section 6)")
		epsilon    = fs.Float64("epsilon", 0, "adaptive per-pair noise rate: derive each pair's threshold from its co-occurrence count (overrides -threshold)")
		output     = fs.String("output", "text", "output format: text (adjacency), layers (ASCII), dot (Graphviz), or bpmn (BPMN 2.0 XML)")
		learnConds = fs.Bool("conditions", false, "also learn Boolean edge conditions from activity outputs (Section 7)")
		check      = fs.Bool("check", false, "verify the mined graph is conformal with the log (Definition 7)")
		compare    = fs.String("compare", "", "reference graph file (adjacency format) to diff the mined graph against")
		name       = fs.String("name", "Process", "graph name for DOT output")
		stats      = fs.Bool("stats", false, "print log statistics and trace variants instead of mining")
		verbose    = fs.Bool("verbose", false, "print the mining pipeline funnel (edges admitted/removed per stage)")
		support    = fs.Bool("support", false, "annotate each mined edge with its log support and confidence")
		lenient    = fs.Bool("lenient", false, "skip malformed records and unterminated steps instead of aborting")
		quarantine = fs.Bool("quarantine", false, "set aside whole executions touched by malformed records instead of aborting")
		timeout    = fs.Duration("timeout", 0, "abort mining after this duration (e.g. 30s); 0 = no limit")
		trace      = fs.Bool("trace", false, "print a per-stage wall-time and allocation table for the pipeline to stderr (auto algorithm only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("need exactly one log file argument, got %d", fs.NArg())
	}
	if *lenient && *quarantine {
		return fmt.Errorf("-lenient and -quarantine are mutually exclusive")
	}
	ingest := procmine.IngestOptions{}
	if *lenient {
		ingest.Policy = procmine.Skip
	}
	if *quarantine {
		ingest.Policy = procmine.Quarantine
	}
	path := fs.Arg(0)
	// tr stays nil without -trace; obs spans on a nil trace are no-ops, so
	// the untraced path pays nothing.
	var tr *obs.Trace
	if *trace {
		tr = obs.NewTrace()
	}
	var log *procmine.Log
	var rep *procmine.IngestReport
	var err error
	decode := tr.Start("decode")
	if path == "-" {
		log, rep, err = procmine.ReadLogWith(os.Stdin, procmine.FormatText, ingest)
	} else {
		log, rep, err = procmine.ReadLogFileWith(path, ingest)
	}
	decode.End()
	if err != nil {
		return inputError{fmt.Errorf("reading %s: %w", path, err)}
	}
	if *verbose && rep != nil && !rep.Clean() {
		if err := rep.WriteReport(os.Stderr); err != nil {
			return err
		}
	}
	if err := log.Validate(); err != nil {
		return inputError{fmt.Errorf("invalid log: %w", err)}
	}

	if *stats {
		st := log.ComputeStats()
		fmt.Printf("executions: %d\nactivities: %d\nevents:     %d\nsteps/execution: min %d, mean %.1f, max %d\n",
			st.Executions, st.Activities, st.Events, st.MinLen, st.MeanLen, st.MaxLen)
		fmt.Println("\ntrace variants:")
		for _, v := range log.Variants() {
			fmt.Printf("  %6d  %s\n", v.Count, v.Sequence)
		}
		fmt.Println()
		if err := log.WriteActivityStats(os.Stdout); err != nil {
			return err
		}
		return nil
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opt := procmine.Options{MinSupport: *threshold, AdaptiveEpsilon: *epsilon}
	var g *procmine.Graph
	switch *algorithm {
	case "auto":
		if *verbose || *trace {
			var diag *core.Diagnostics
			g, diag, err = core.MineWithDiagnosticsContext(ctx, log, opt)
			if err == nil {
				if *verbose {
					if derr := diag.WriteReport(os.Stderr); derr != nil {
						return derr
					}
				}
				if *trace {
					stages := append(tr.Stages(), diag.Stages...)
					if terr := obs.WriteStageTable(os.Stderr, stages); terr != nil {
						return terr
					}
				}
			}
		} else {
			g, err = procmine.MineContext(ctx, log, opt)
		}
	case "special":
		g, err = core.MineSpecialDAGContext(ctx, log, opt)
	case "dag":
		g, err = core.MineGeneralDAGContext(ctx, log, opt)
	case "cyclic":
		g, err = core.MineCyclicContext(ctx, log, opt)
	case "alpha":
		net := alpha.Mine(log)
		if err := net.WriteReport(os.Stderr); err != nil {
			return err
		}
		g = net.CausalGraph()
	default:
		return fmt.Errorf("unknown algorithm %q", *algorithm)
	}
	if err != nil {
		return fmt.Errorf("mining: %w", err)
	}
	if *trace && *algorithm != "auto" {
		// Non-auto algorithms have no staged pipeline; the table still shows
		// the decode cost.
		if terr := obs.WriteStageTable(os.Stderr, tr.Stages()); terr != nil {
			return terr
		}
	}

	st := log.ComputeStats()
	fmt.Fprintf(os.Stderr, "mined %d activities, %d edges from %d executions (%d events)\n",
		g.NumVertices(), g.NumEdges(), st.Executions, st.Events)

	edgeLabels := map[string]string{}
	if *learnConds {
		learned := procmine.LearnConditions(log, g, procmine.TreeConfig{MinLeaf: 5})
		for e, le := range learned {
			edgeLabels[e.String()] = le.Condition.String()
		}
	}

	switch *output {
	case "text":
		if err := g.WriteAdjacency(os.Stdout); err != nil {
			return err
		}
		if *support {
			fmt.Println()
			sup := core.Support(log, g)
			for _, e := range g.Edges() {
				s := sup[e]
				fmt.Printf("%-30s ordered %d / co-occurring %d (confidence %.2f)\n",
					e.String(), s.Ordered, s.CoOccur, s.Confidence())
			}
		}
		if *learnConds {
			fmt.Println()
			for _, e := range g.Edges() {
				fmt.Printf("f(%s) = %s\n", e, edgeLabels[e.String()])
			}
		}
	case "dot":
		opts := graph.DotOptions{Name: *name, Rankdir: "LR"}
		if *learnConds {
			opts.EdgeLabels = edgeLabels
		}
		if err := g.WriteDot(os.Stdout, opts); err != nil {
			return err
		}
	case "layers":
		if err := g.WriteLayers(os.Stdout); err != nil {
			return err
		}
	case "bpmn":
		var start, end string
		if len(log.Executions) > 0 {
			start = log.Executions[0].First()
			end = log.Executions[0].Last()
		}
		bopts := bpmn.Options{ProcessID: *name, Start: start, End: end}
		if *learnConds {
			bopts.Conditions = map[procmine.Edge]string{}
			for _, e := range g.Edges() {
				if l := edgeLabels[e.String()]; l != "" && l != "true" {
					bopts.Conditions[e] = l
				}
			}
		}
		if err := bpmn.Write(os.Stdout, g, bopts); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown output format %q", *output)
	}

	if *check {
		var start, end string
		if len(log.Executions) > 0 {
			start = log.Executions[0].First()
			end = log.Executions[0].Last()
		}
		rep := procmine.Check(g, log, start, end, opt)
		fmt.Fprintf(os.Stderr, "conformance: %s\n", rep.Summary())
		if !rep.Conformal() {
			fit := procmine.Fitness(g, start, end, log)
			_ = fit.WriteReport(os.Stderr)
			return fmt.Errorf("mined graph is not conformal with the log")
		}
	}

	if *compare != "" {
		f, err := os.Open(*compare)
		if err != nil {
			return fmt.Errorf("opening reference graph: %w", err)
		}
		ref, err := procmine.ReadGraph(f)
		cerr := f.Close()
		if err != nil {
			return fmt.Errorf("parsing reference graph: %w", err)
		}
		if cerr != nil {
			return fmt.Errorf("closing reference graph: %w", cerr)
		}
		d := procmine.Compare(ref, g)
		if d.Equal() {
			fmt.Fprintln(os.Stderr, "compare: mined graph equals the reference")
		} else {
			fmt.Fprintf(os.Stderr, "compare: precision %.3f recall %.3f\n", d.Precision(), d.Recall())
			for _, e := range d.MissingEdges {
				fmt.Fprintf(os.Stderr, "compare: missing edge %v\n", e)
			}
			for _, e := range d.ExtraEdges {
				fmt.Fprintf(os.Stderr, "compare: extra edge %v\n", e)
			}
			return fmt.Errorf("mined graph differs from reference (%d missing, %d extra edges)",
				len(d.MissingEdges), len(d.ExtraEdges))
		}
	}
	return nil
}
