// Command procmine-vet runs the procmine static-analysis suite: the eleven
// go/analysis-style passes that mechanically enforce the invariants the
// paper's conformality and determinism guarantees rest on (see DESIGN.md,
// "Static analysis invariants"), including the interprocedural passes built
// on the module call graph (lockheldblocking, ctxleak, hotalloc, and the
// lock-order deadlock detector lockorder).
//
// Standalone, over package patterns:
//
//	procmine-vet ./...
//
// Or as a vet tool, one package at a time under cmd/go's unit-checker
// protocol (function summaries cross package boundaries through vetx facts
// files):
//
//	go vet -vettool=$(which procmine-vet) ./...
//
// Diagnostic baselines let CI gate on new findings only:
//
//	procmine-vet -baseline write BASELINE.json ./...   # accept the status quo
//	procmine-vet -baseline check BASELINE.json ./...   # fail on new findings
//
// Check mode also fails on stale baseline entries — accepted findings the
// tree no longer produces — so a fixed finding forces a regenerate rather
// than silently re-admitting its regression later.
//
// With -json, standalone findings (and -baseline check regressions) are
// emitted as a JSON array of {file, line, col, pass, message} objects,
// sorted by (file, line, col, pass), for CI annotation tooling. Adding
// -timing changes the JSON shape to an object
// {"findings": [...], "timing": {...}} carrying per-pass wall time,
// diagnostic counts, cache hit/typecheck counts, and coverage counters;
// without -json, -timing prints the table to stderr. -stats prints each
// pass's coverage counters (sites skipped as unanalyzable, see
// analysis.Pass.Count) to stderr. -graph FILE writes the module call graph
// as Graphviz DOT ("-" for stdout); unresolved call edges carry
// kind="unresolved", which CI greps to keep the service layer fully
// analyzable.
//
// -cache DIR enables the driver's per-package content-hash cache: packages
// whose sources, in-module dependency closure, toolchain, and analyzer
// binary are all unchanged replay their findings without being re-parsed
// or re-type-checked, and a warm rerun's output is byte-identical to the
// cold run's.
//
// Exit status: 0 when clean, 1 when any pass reports a finding (or any
// non-baselined finding under -baseline check), 2 when loading or
// type-checking fails. Findings can be silenced per line with
// `//lint:ignore procmine <reason>` or
// `//lint:ignore procmine/<pass> <reason>`.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"procmine/internal/analysis"
	"procmine/internal/analysis/baseline"
	"procmine/internal/analysis/callgraph"
	"procmine/internal/analysis/driver"
	"procmine/internal/analysis/passes/ctxflow"
	"procmine/internal/analysis/passes/ctxleak"
	"procmine/internal/analysis/passes/errlost"
	"procmine/internal/analysis/passes/hotalloc"
	"procmine/internal/analysis/passes/lockbalance"
	"procmine/internal/analysis/passes/lockheldblocking"
	"procmine/internal/analysis/passes/lockorder"
	"procmine/internal/analysis/passes/mapiterorder"
	"procmine/internal/analysis/passes/noglobals"
	"procmine/internal/analysis/passes/sharedcapture"
	"procmine/internal/analysis/passes/wgprotocol"
	"procmine/internal/analysis/vetcfg"
)

// suite returns the full pass list: seven intra-function passes and the
// four interprocedural ones built on the call-graph summaries.
func suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxflow.Analyzer(),
		ctxleak.Analyzer(),
		errlost.Analyzer(),
		hotalloc.Analyzer(),
		lockbalance.Analyzer(),
		lockheldblocking.Analyzer(),
		lockorder.Analyzer(),
		mapiterorder.Analyzer(),
		noglobals.Analyzer(),
		sharedcapture.Analyzer(),
		wgprotocol.Analyzer(),
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// say writes best-effort CLI output. A failed write to stdout/stderr leaves
// the tool no channel to report on, so the error is deliberately dropped
// here — in exactly one place.
func say(w io.Writer, format string, args ...any) {
	_, _ = fmt.Fprintf(w, format, args...)
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("procmine-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	versionFlag := fs.String("V", "", "print version and exit (cmd/go tool-ID protocol)")
	jsonFlag := fs.Bool("json", false, "emit diagnostics as JSON (vet protocol)")
	flagsFlag := fs.Bool("flags", false, "describe flags as JSON and exit (cmd/go vet-tool protocol)")
	baselineFlag := fs.String("baseline", "", "baseline mode: 'write' records current findings to the baseline file, 'check' fails only on findings the baseline does not accept")
	timingFlag := fs.Bool("timing", false, "report per-pass wall time and diagnostic counts (table on stderr, or embedded in -json output)")
	statsFlag := fs.Bool("stats", false, "report per-pass coverage counters — sites skipped as unanalyzable — on stderr")
	cacheFlag := fs.String("cache", "", "cache directory for per-package analysis results; unchanged packages replay instead of re-type-checking")
	graphFlag := fs.String("graph", "", "write the module call graph as Graphviz DOT to this file ('-' for stdout)")
	fs.Usage = func() {
		say(stderr, "usage: procmine-vet [packages] | procmine-vet -baseline write|check [FILE.json] [packages] | procmine-vet <unit>.cfg\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *versionFlag != "" {
		return printVersion(stdout, stderr, *versionFlag)
	}
	if *flagsFlag {
		return printFlags(fs, stdout, stderr)
	}
	rest := fs.Args()

	// Unit-checker mode: cmd/go hands us one <unit>.cfg per package.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return vetcfg.Run(rest[0], suite(), *jsonFlag, stdout, stderr)
	}

	// Baseline modes take an optional leading FILE.json positional.
	baselinePath := "BASELINE.json"
	if *baselineFlag != "" && len(rest) > 0 && strings.HasSuffix(rest[0], ".json") {
		baselinePath = rest[0]
		rest = rest[1:]
	}
	switch *baselineFlag {
	case "", "write", "check":
	default:
		say(stderr, "procmine-vet: -baseline must be 'write' or 'check', got %q\n", *baselineFlag)
		return 2
	}

	if len(rest) == 0 {
		rest = []string{"."}
	}
	opts := driver.Options{CacheDir: *cacheFlag}
	if opts.CacheDir != "" {
		// Salt the cache with the binary's own content hash: rebuilding the
		// tool (new pass logic over identical sources) must miss.
		salt, err := exeHash()
		if err != nil {
			say(stderr, "procmine-vet: %v\n", err)
			return 2
		}
		opts.Salt = salt
	}
	res, err := driver.RunWithOptions(rest, suite(), opts)
	if err != nil {
		say(stderr, "procmine-vet: %v\n", err)
		return 2
	}
	findings := res.Findings
	wd, _ := os.Getwd()

	if *graphFlag != "" {
		if err := writeGraph(res.Graph, *graphFlag, stdout); err != nil {
			say(stderr, "procmine-vet: %v\n", err)
			return 2
		}
	}

	switch *baselineFlag {
	case "write":
		if err := baseline.Write(baselinePath, baseline.FromFindings(wd, findings)); err != nil {
			say(stderr, "procmine-vet: %v\n", err)
			return 2
		}
		say(stderr, "procmine-vet: wrote %s accepting %d finding(s)\n", baselinePath, len(findings))
		return 0
	case "check":
		base, err := baseline.Load(baselinePath)
		if err != nil {
			say(stderr, "procmine-vet: %v\n", err)
			return 2
		}
		// Stale entries — accepted findings the tree no longer produces —
		// fail the check just like regressions do: a stale baseline would
		// silently re-admit a regression of the fixed finding, so the fix
		// must be locked in with an immediate regenerate.
		stale := baseline.Stale(base, wd, findings)
		for _, e := range stale {
			say(stderr, "procmine-vet: stale baseline entry: %s no longer produces %d × %s %q; regenerate with -baseline write\n",
				e.File, e.Count, e.Pass, e.Message)
		}
		fresh := baseline.Diff(base, wd, findings)
		regressed := baseline.Select(fresh, wd, findings)
		if len(regressed) > 0 {
			say(stderr, "procmine-vet: %d finding(s) not accepted by %s\n", len(regressed), baselinePath)
		}
		status := emit(stdout, stderr, wd, regressed, *jsonFlag, *timingFlag, *statsFlag, res.Stats)
		if status == 0 && len(stale) > 0 {
			say(stderr, "procmine-vet: %s carries %d stale entr(y/ies); failing check until it is regenerated\n", baselinePath, len(stale))
			return 1
		}
		return status
	}

	return emit(stdout, stderr, wd, findings, *jsonFlag, *timingFlag, *statsFlag, res.Stats)
}

// emit prints findings (and, when asked, the timing breakdown and coverage
// counters) in the requested format and returns the exit status: 0 clean,
// 1 with findings.
func emit(stdout, stderr io.Writer, wd string, findings []driver.Finding, asJSON, timing, counters bool, stats driver.Stats) int {
	status := 0
	if len(findings) > 0 {
		status = 1
	}
	if counters {
		printCounters(stderr, stats)
	}
	if !asJSON {
		driver.Format(stdout, wd, findings)
		if timing {
			printTiming(stderr, stats)
		}
		return status
	}
	type jsonFinding struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Pass    string `json:"pass"`
		Message string `json:"message"`
	}
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		name := f.Pos.Filename
		if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		out = append(out, jsonFinding{
			File:    filepath.ToSlash(name),
			Line:    f.Pos.Line,
			Col:     f.Pos.Column,
			Pass:    f.Analyzer,
			Message: f.Message,
		})
	}
	// Without -timing the shape stays a bare array for existing tooling;
	// with it, findings and the per-pass breakdown ride in one object.
	var payload any = out
	if timing {
		payload = struct {
			Findings any          `json:"findings"`
			Timing   driver.Stats `json:"timing"`
		}{Findings: out, Timing: stats}
	}
	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		say(stderr, "procmine-vet: %v\n", err)
		return 2
	}
	say(stdout, "%s\n", data)
	return status
}

// printTiming renders the per-pass table, slowest pass visible at a glance.
func printTiming(w io.Writer, stats driver.Stats) {
	say(w, "procmine-vet: timing over %d package(s) (%d cache hit(s), %d type-checked):\n",
		stats.Packages, stats.CacheHits, stats.Typechecked)
	for _, p := range stats.Passes {
		say(w, "  %-18s %9.1fms  %d finding(s)\n", p.Pass, p.Millis, p.Findings)
	}
}

// printCounters renders each pass's coverage counters — how often it
// silently skipped a site it could not reason about, e.g. a mutex behind a
// non-canonicalizable receiver expression.
func printCounters(w io.Writer, stats driver.Stats) {
	total := 0
	for _, p := range stats.Passes {
		if len(p.Counters) == 0 {
			continue
		}
		names := make([]string, 0, len(p.Counters))
		for name := range p.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			say(w, "procmine-vet: stats: %s: %s = %d\n", p.Pass, name, p.Counters[name])
			total++
		}
	}
	if total == 0 {
		say(w, "procmine-vet: stats: no sites skipped\n")
	}
}

// writeGraph dumps the call graph as DOT to path ("-" for stdout).
func writeGraph(g *callgraph.Graph, path string, stdout io.Writer) error {
	if path == "-" {
		return g.WriteDOT(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := g.WriteDOT(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// printFlags implements the cmd/go -flags handshake: before running a vet
// tool, the go command asks it to describe its flag set as a JSON array so
// vet-specific command-line flags can be routed to it.
func printFlags(fs *flag.FlagSet, stdout, stderr io.Writer) int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		isBool := false
		if b, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			isBool = b.IsBoolFlag()
		}
		out = append(out, jsonFlag{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	data, err := json.Marshal(out)
	if err != nil {
		say(stderr, "procmine-vet: %v\n", err)
		return 2
	}
	say(stdout, "%s\n", data)
	return 0
}

// printVersion implements the cmd/go -V=full tool-ID handshake: the go
// command embeds the printed line in its build cache key, so it must vary
// with the binary's contents.
func printVersion(stdout, stderr io.Writer, mode string) int {
	if mode != "full" {
		say(stderr, "procmine-vet: unsupported flag value -V=%s\n", mode)
		return 2
	}
	sum, err := exeHash()
	if err != nil {
		say(stderr, "procmine-vet: %v\n", err)
		return 2
	}
	exe, err := os.Executable()
	if err != nil {
		say(stderr, "procmine-vet: %v\n", err)
		return 2
	}
	say(stdout, "%s version procmine-vet buildID=%s\n", exe, sum)
	return 0
}

// exeHash is the sha256 of the running binary, hex-encoded. It doubles as
// the -V=full build ID and the -cache key salt: both must change exactly
// when the tool's behavior might.
func exeHash() (string, error) {
	exe, err := os.Executable()
	if err != nil {
		return "", err
	}
	f, err := os.Open(exe)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	_, cerr := io.Copy(h, f)
	if err := f.Close(); cerr == nil {
		cerr = err
	}
	if cerr != nil {
		return "", cerr
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}
