package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestVersionHandshake(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-V=full exit code = %d, want 0; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "version procmine-vet buildID=") {
		t.Errorf("-V=full output missing tool ID line: %q", out)
	}
	stdout.Reset()
	if code := run([]string{"-V=short"}, &stdout, &stderr); code != 2 {
		t.Errorf("-V=short exit code = %d, want 2 (only full is supported)", code)
	}
}

func TestFlagsHandshake(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-flags exit code = %d, want 0; stderr: %s", code, stderr.String())
	}
	var flags []struct {
		Name  string
		Bool  bool
		Usage string
	}
	if err := json.Unmarshal([]byte(stdout.String()), &flags); err != nil {
		t.Fatalf("-flags output is not JSON: %v\n%s", err, stdout.String())
	}
	names := make(map[string]bool)
	for _, f := range flags {
		names[f.Name] = true
	}
	for _, want := range []string{"V", "json", "flags", "baseline"} {
		if !names[want] {
			t.Errorf("-flags output missing flag %q: %s", want, stdout.String())
		}
	}
}

func TestBadFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown flag exit code = %d, want 2", code)
	}
}

// TestSelfClean runs the standalone driver over this very package, which
// must be free of findings.
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list; skipped in -short mode")
	}
	var stdout, stderr strings.Builder
	if code := run([]string{"."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

func TestBadBaselineMode(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-baseline", "merge", "."}, &stdout, &stderr); code != 2 {
		t.Errorf("-baseline merge exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "'write' or 'check'") {
		t.Errorf("stderr missing mode hint: %s", stderr.String())
	}
}

func TestBaselineCheckMissingFile(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list; skipped in -short mode")
	}
	var stdout, stderr strings.Builder
	path := filepath.Join(t.TempDir(), "nope.json")
	if code := run([]string{"-baseline", "check", path, "."}, &stdout, &stderr); code != 2 {
		t.Errorf("check against missing baseline exit code = %d, want 2; stderr: %s", code, stderr.String())
	}
}

// TestBaselineCheckFailsOnStaleEntries pins the stale gate: a baseline
// accepting a finding this (clean) package no longer produces must fail
// -baseline check, not merely warn, so fixes get locked in by regenerating.
func TestBaselineCheckFailsOnStaleEntries(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list; skipped in -short mode")
	}
	path := filepath.Join(t.TempDir(), "BASELINE.json")
	stale := `{
  "schema": "procmine-vet-baseline/v1",
  "findings": [
    {"file": "main.go", "pass": "hotalloc", "message": "long gone finding", "count": 2}
  ],
  "summary": {"hotalloc": 2}
}` + "\n"
	if err := os.WriteFile(path, []byte(stale), 0o666); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr strings.Builder
	if code := run([]string{"-baseline", "check", path, "."}, &stdout, &stderr); code != 1 {
		t.Fatalf("check with stale baseline exit code = %d, want 1\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "stale baseline entry") ||
		!strings.Contains(stderr.String(), "failing check") {
		t.Errorf("stderr missing stale failure explanation:\n%s", stderr.String())
	}
}

// TestBaselineRoundTrip writes a baseline for this (clean) package and
// immediately checks against it.
func TestBaselineRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list; skipped in -short mode")
	}
	path := filepath.Join(t.TempDir(), "BASELINE.json")
	var stdout, stderr strings.Builder
	if code := run([]string{"-baseline", "write", path, "."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-baseline write exit code = %d, want 0\nstderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("baseline file not written: %v", err)
	}
	if !strings.Contains(string(data), "procmine-vet-baseline/v1") {
		t.Errorf("baseline file missing schema marker:\n%s", data)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", "check", path, "."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-baseline check exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

// TestJSONColAndOrder pins the -json contract: every finding carries a
// 1-based column and the array is sorted by (file, line, col, pass). The
// fixture module seeds a leaked Lock, an ABBA lock-order cycle, and a
// mutex behind a map index — the latter producing no finding but a
// skipped-noncanonical-receiver counter, which -stats must surface.
func TestJSONColAndOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list; skipped in -short mode")
	}
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module jsontest\n\ngo 1.22\n",
		"internal/m/m.go": `package m

import "sync"

type T struct {
	a sync.Mutex
	b sync.Mutex
}

func Leak(t *T) {
	t.a.Lock()
}

func AB(t *T) {
	t.a.Lock()
	defer t.a.Unlock()
	t.b.Lock()
	t.b.Unlock()
}

func BA(t *T) {
	t.b.Lock()
	defer t.b.Unlock()
	t.a.Lock()
	t.a.Unlock()
}

func Skip(ms map[string]*sync.Mutex) {
	ms["k"].Lock()
	ms["k"].Unlock()
}
`,
	}
	for name, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)

	var stdout, stderr strings.Builder
	if code := run([]string{"-json", "-stats", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1 (seeded findings)\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	var out []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Pass    string `json:"pass"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout.String()), &out); err != nil {
		t.Fatalf("-json output is not a findings array: %v\n%s", err, stdout.String())
	}
	if len(out) < 2 {
		t.Fatalf("got %d findings, want at least the leak and the cycle:\n%s", len(out), stdout.String())
	}
	for i, f := range out {
		if f.Col < 1 {
			t.Errorf("finding %d has no column: %+v", i, f)
		}
	}
	for i := 1; i < len(out); i++ {
		a, b := out[i-1], out[i]
		ka := fmt.Sprintf("%s\x00%08d\x00%08d\x00%s", a.File, a.Line, a.Col, a.Pass)
		kb := fmt.Sprintf("%s\x00%08d\x00%08d\x00%s", b.File, b.Line, b.Col, b.Pass)
		if ka > kb {
			t.Errorf("findings out of order at %d: %+v before %+v", i, a, b)
		}
	}
	if !strings.Contains(stderr.String(), "skipped-noncanonical-receiver") {
		t.Errorf("-stats output missing the skip counter:\n%s", stderr.String())
	}
}
