package main

import "testing"

func TestRunQuickExperiments(t *testing.T) {
	// Everything except the full Table 1 sweep, at quick settings. These
	// exercise the dispatcher wiring; the experiment logic itself is tested
	// in internal/experiments.
	for _, which := range []string{"table3", "figure7", "noise", "conditions", "scaling", "figures8to12"} {
		if err := run([]string{"-run", which, "-quick"}); err != nil {
			t.Errorf("run %s: %v", which, err)
		}
	}
}

func TestRunTable1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-run", "table1", "-quick"}); err != nil {
		t.Errorf("run table1: %v", err)
	}
	if err := run([]string{"-run", "table2", "-quick"}); err != nil {
		t.Errorf("run table2: %v", err)
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run([]string{"-run", "bogus"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if err := run([]string{"-run", "all", "-quick"}); err != nil {
		t.Fatalf("run all: %v", err)
	}
	if err := run([]string{"-run", "table1", "-quick", "-io"}); err != nil {
		t.Fatalf("run table1 -io: %v", err)
	}
}
