// Command experiments regenerates the tables and figures of the paper's
// evaluation section from the synthetic and Flowmark-replica substrates.
//
// Usage:
//
//	experiments -run all            # everything (full Table 1 sweep is slow)
//	experiments -run table1 -quick  # reduced sweep
//	experiments -run table3
//	experiments -run figure7
//	experiments -run figures8to12
//	experiments -run noise
//	experiments -run conditions
package main

import (
	"flag"
	"fmt"
	"os"

	"procmine/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		which = fs.String("run", "all", "experiment: all, table1, table2, table3, figure7, figures8to12, noise, conditions, scaling, robustness, examples, baseline, alphacompare, openproblem")
		quick = fs.Bool("quick", false, "reduced parameters (smaller sweeps, fewer trials)")
		seed  = fs.Int64("seed", 1998, "PRNG seed")
		io    = fs.Bool("io", false, "table1/table2: include disk read+assemble in the timing (the paper's setup)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := os.Stdout

	wants := func(name string) bool { return *which == "all" || *which == name }
	ran := false

	if wants("table1") || wants("table2") {
		ran = true
		cfg := experiments.SyntheticConfig{Seed: *seed, IncludeIO: *io}
		if *quick {
			cfg.Vertices = []int{10, 25, 50}
			cfg.Executions = []int{100, 1000}
		}
		res, err := experiments.RunSynthetic(cfg)
		if err != nil {
			return err
		}
		if wants("table1") {
			if err := res.WriteTable1(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		if wants("table2") {
			if err := res.WriteTable2(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
	}

	if wants("table3") || wants("figures8to12") {
		ran = true
		res, err := experiments.RunFlowmark(experiments.FlowmarkConfig{Seed: *seed})
		if err != nil {
			return err
		}
		if wants("table3") {
			if err := res.WriteTable3(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		if wants("figures8to12") {
			if err := res.WriteFigures(w); err != nil {
				return err
			}
		}
	}

	if wants("figure7") {
		ran = true
		cfg := experiments.Graph10Config{}
		if !*quick {
			cfg.CurvePoints = []int{50, 100, 200, 500, 1000}
		}
		res, err := experiments.RunGraph10(cfg)
		if err != nil {
			return err
		}
		if err := res.WriteReport(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	if wants("noise") {
		ran = true
		cfg := experiments.NoiseConfig{Seed: *seed}
		if *quick {
			cfg.Trials = 5
			cfg.Epsilons = []float64{0.05, 0.2}
		}
		res, err := experiments.RunNoise(cfg)
		if err != nil {
			return err
		}
		if err := res.WriteReport(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	if wants("conditions") {
		ran = true
		cfg := experiments.ConditionsConfig{Seed: *seed}
		if *quick {
			cfg.TrainExecutions = 120
			cfg.HoldoutExecutions = 60
		}
		res, err := experiments.RunConditions(cfg)
		if err != nil {
			return err
		}
		if err := res.WriteReport(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	if wants("scaling") {
		ran = true
		cfg := experiments.ScalingConfig{Seed: *seed}
		if *quick {
			cfg.Points = []int{250, 500, 1000, 2000}
		}
		res, err := experiments.RunScaling(cfg)
		if err != nil {
			return err
		}
		if err := res.WriteReport(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	if wants("openproblem") {
		ran = true
		res, err := experiments.RunOpenProblem(*seed)
		if err != nil {
			return err
		}
		if err := res.WriteReport(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	if wants("alphacompare") {
		ran = true
		res, err := experiments.RunAlphaCompare(experiments.AlphaCompareConfig{Seed: *seed})
		if err != nil {
			return err
		}
		if err := res.WriteReport(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	if wants("baseline") {
		ran = true
		cfg := experiments.BaselineConfig{}
		if *quick {
			cfg.MaxParallel = 5
		}
		res, err := experiments.RunBaseline(cfg)
		if err != nil {
			return err
		}
		if err := res.WriteReport(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	if wants("examples") {
		ran = true
		if err := experiments.WriteWorkedExamples(w); err != nil {
			return err
		}
	}

	if wants("robustness") {
		ran = true
		cfg := experiments.RobustnessConfig{Seed: *seed}
		if *quick {
			cfg.Rates = []float64{0.02, 0.1}
			cfg.Trials = 3
		}
		res, err := experiments.RunRobustness(cfg)
		if err != nil {
			return err
		}
		if err := res.WriteReport(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	if !ran {
		return fmt.Errorf("unknown experiment %q (want all, table1, table2, table3, figure7, figures8to12, noise, conditions, scaling, robustness, examples, baseline, alphacompare, openproblem)", *which)
	}
	return nil
}
