package procmine

// Cross-package integration and property tests: the whole pipeline —
// simulate → encode → decode → mine → check — over randomized workloads.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"procmine/internal/core"
	"procmine/internal/graph"
	"procmine/internal/synth"
)

// TestPropertyMinedGraphIsConformal: for random synthetic DAG workloads,
// Algorithm 2's output is conformal (Definition 7) with its input log and
// every execution is consistent (Definition 6) with it.
func TestPropertyMinedGraphIsConformal(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	trial := 0
	f := func(seedDelta int64) bool {
		trial++
		n := 5 + rng.Intn(15)
		g := synth.RandomDAG(rng, n, 0.2+rng.Float64()*0.6)
		sim, err := synth.NewSimulator(g, rand.New(rand.NewSource(seedDelta)))
		if err != nil {
			t.Logf("trial %d: simulator: %v", trial, err)
			return false
		}
		l := sim.GenerateLog("p_", 20+rng.Intn(60))
		mined, err := MineDAG(l, Options{})
		if err != nil {
			t.Logf("trial %d: mine: %v", trial, err)
			return false
		}
		rep := Check(mined, l, synth.StartActivity, synth.EndActivity, Options{})
		if !rep.Conformal() {
			t.Logf("trial %d: %s", trial, rep.Summary())
			for id, err := range rep.InconsistentExecutions {
				t.Logf("  %s: %v", id, err)
			}
			for _, e := range rep.MissingDependencies {
				t.Logf("  missing dependency %v", e)
			}
			for _, e := range rep.SpuriousPaths {
				t.Logf("  spurious path %v", e)
			}
			return false
		}
		for _, exec := range l.Executions {
			if err := Consistent(mined, synth.StartActivity, synth.EndActivity, exec); err != nil {
				t.Logf("trial %d: %v", trial, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMiningDeterministic: mining is a pure function of the log.
func TestPropertyMiningDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 20; trial++ {
		g := synth.RandomDAG(rng, 5+rng.Intn(10), 0.5)
		sim, err := synth.NewSimulator(g, rand.New(rand.NewSource(int64(trial))))
		if err != nil {
			t.Fatal(err)
		}
		l := sim.GenerateLog("d_", 30)
		a, err := MineDAG(l, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := MineDAG(l, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !graph.EqualGraphs(a, b) {
			t.Fatalf("trial %d: nondeterministic mining:\n%v\n%v", trial, a, b)
		}
	}
}

// TestPropertyMineExactMinimality: Algorithm 1's result is its own
// transitive reduction (no redundant edges) and closure-equivalent to the
// Algorithm 2 result on the same special-form log.
func TestPropertyMineExactMinimality(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 30; trial++ {
		// Random special-form log: permutations of a fixed alphabet
		// respecting a random partial order (start/end pinned).
		n := 4 + rng.Intn(6)
		acts := make([]string, n)
		for i := range acts {
			acts[i] = fmt.Sprintf("t%d", i)
		}
		l := &Log{}
		for i := 0; i < 10+rng.Intn(30); i++ {
			mid := append([]string(nil), acts[1:n-1]...)
			rng.Shuffle(len(mid), func(a, b int) { mid[a], mid[b] = mid[b], mid[a] })
			seq := append([]string{acts[0]}, append(mid, acts[n-1])...)
			l.Executions = append(l.Executions, FromSequence(fmt.Sprintf("e%d", i), seq...))
		}
		exact, err := MineExact(l, Options{})
		if err != nil {
			t.Fatal(err)
		}
		red, err := exact.TransitiveReduction()
		if err != nil {
			t.Fatal(err)
		}
		if !graph.EqualGraphs(exact, red) {
			t.Fatalf("trial %d: Algorithm 1 result is not transitively reduced", trial)
		}
		general, err := MineDAG(l, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !exact.SameClosure(general) {
			t.Fatalf("trial %d: Algorithms 1 and 2 disagree on closure:\n%v\n%v", trial, exact, general)
		}
	}
}

// TestPropertyCodecsPreserveMining: a log surviving any codec round trip
// mines to the identical graph.
func TestPropertyCodecsPreserveMining(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	g := synth.RandomDAG(rng, 12, 0.5)
	sim, err := synth.NewSimulator(g, rng)
	if err != nil {
		t.Fatal(err)
	}
	l := sim.GenerateLog("c_", 50)
	want, err := MineDAG(l, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []LogFormat{FormatText, FormatCSV, FormatJSON, FormatXES} {
		var buf bytes.Buffer
		if err := WriteLog(&buf, l, format); err != nil {
			t.Fatalf("format %d: %v", format, err)
		}
		back, err := ReadLog(&buf, format)
		if err != nil {
			t.Fatalf("format %d: %v", format, err)
		}
		got, err := MineDAG(back, Options{})
		if err != nil {
			t.Fatalf("format %d: %v", format, err)
		}
		if !graph.EqualGraphs(want, got) {
			t.Fatalf("format %d changed the mined graph", format)
		}
	}
}

// TestPropertyCyclicExecutionsConsistent: Algorithm 3's output admits every
// execution of its cyclic input log.
func TestPropertyCyclicExecutionsConsistent(t *testing.T) {
	logs := [][]string{
		{"ABDCE", "ABDCBCE", "ABCBDCE", "ADE"},
		{"ABCDE", "ABCDBCDE"},
		{"ARPE", "ARVRPE", "ARVRVRPE"},
	}
	for _, seqs := range logs {
		l := LogFromStrings(seqs...)
		g, err := MineCyclic(l, Options{})
		if err != nil {
			t.Fatalf("%v: %v", seqs, err)
		}
		start := seqs[0][:1]
		end := seqs[0][len(seqs[0])-1:]
		for _, exec := range l.Executions {
			if err := Consistent(g, start, end, exec); err != nil {
				t.Errorf("log %v: execution %s: %v", seqs, exec, err)
			}
		}
	}
}

// TestPropertyIncrementalEqualsBatchPublicAPI exercises the incremental
// miner through randomized engine workloads.
func TestPropertyIncrementalEqualsBatchPublicAPI(t *testing.T) {
	p, err := FlowmarkProcess("StressSleep")
	if err != nil {
		t.Fatal(err)
	}
	l, err := SimulateLog(p, 80, 55)
	if err != nil {
		t.Fatal(err)
	}
	im := core.NewIncrementalMiner()
	for _, exec := range l.Executions {
		if err := im.Add(exec); err != nil {
			t.Fatal(err)
		}
	}
	inc, err := im.Mine(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := core.MineCyclic(l, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.EqualGraphs(inc, batch) {
		t.Fatalf("incremental differs from batch on engine log:\ninc:   %v\nbatch: %v", inc, batch)
	}
}
